#include "opt/rect_backend.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "runtime/stats.hpp"
#include "sched/rect_packer.hpp"

namespace soctest {

bool rect_supported(const OptimizerOptions& opts, std::string* why) {
  const auto fail = [&](const char* reason) {
    if (why) *why = reason;
    return false;
  };
  if (opts.mode != ArchMode::PerCore && opts.mode != ArchMode::NoTdc)
    return fail(
        "only percore and notdc modes are supported (per-bus decompressors "
        "have no per-core rectangle)");
  if (opts.constraint != ConstraintMode::TamWidth)
    return fail("only the TAM-width constraint is supported");
  if (opts.power_budget_mw > 0.0)
    return fail("power-aware packing is not supported");
  if (opts.preemptive || opts.hierarchical)
    return fail(
        "constrained scenarios (preemptive/hierarchical) are not supported — "
        "the packer places rectangles, it does not run a scenario scheduler");
  return true;
}

RectBackend::RectBackend(const SocOptimizer& optimizer,
                         const OptimizerOptions& opts)
    : opt_(&optimizer), opts_(&opts), columns_(optimizer, opts) {
  std::string why;
  if (!rect_supported(opts, &why))
    throw std::invalid_argument("RectBackend: " + why);
  if (opts.width < 1)
    throw std::invalid_argument("RectBackend: width must be >= 1");
  const int n = optimizer.soc().num_cores();
  pareto_.resize(static_cast<std::size_t>(n));
  // A width is Pareto-optimal for a core when its test time strictly beats
  // every narrower width's. Width 1 is always in (it is the minimal
  // feasible rectangle); wider-but-no-faster widths only waste strip area.
  for (int w = 1; w <= opts.width; ++w) {
    const auto col = columns_.column(w);
    for (int i = 0; i < n; ++i) {
      std::vector<int>& p = pareto_[static_cast<std::size_t>(i)];
      if (p.empty() ||
          col->cost[static_cast<std::size_t>(i)].time <
              columns_.column(p.back())->cost[static_cast<std::size_t>(i)].time)
        p.push_back(w);
    }
  }
}

std::vector<std::vector<int>> RectBackend::starts() const {
  const int n = static_cast<int>(pareto_.size());
  std::vector<std::vector<int>> out;
  // Start density scales down with core count — every climb costs
  // O(n * frontier) per pass, so big SOCs get a coarser (still
  // deterministic: a function of n alone) portfolio of basins.
  const bool big = n > kBigSocCores;
  const double all_fractions[] = {0.0, 0.125, 0.25, 0.375, 0.5,
                                  0.625, 0.75, 0.875, 1.0};
  const double big_fractions[] = {0.0, 0.5, 1.0};
  const auto fractions = big ? std::vector<double>(std::begin(big_fractions),
                                                   std::end(big_fractions))
                             : std::vector<double>(std::begin(all_fractions),
                                                   std::end(all_fractions));
  for (double f : fractions) {
    std::vector<int> g(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& p = pareto_[static_cast<std::size_t>(i)];
      const auto idx = static_cast<std::size_t>(
          f * static_cast<double>(p.size() - 1) + 0.5);
      g[static_cast<std::size_t>(i)] = p[idx];
    }
    if (std::find(out.begin(), out.end(), g) == out.end())
      out.push_back(std::move(g));
  }
  // Width-targeted starts: every core snaps to its largest Pareto width
  // <= a common target W/k — the width a balanced k-bus partition would
  // hand it. The index-fraction starts above spread cores over their own
  // frontiers; these align cores on comparable rectangle widths, the shape
  // narrow-strip optima tend to have.
  for (int k = 1; k <= std::min(big ? 8 : n, opts_->width); ++k) {
    const int target = opts_->width / k;
    std::vector<int> g(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& p = pareto_[static_cast<std::size_t>(i)];
      const auto it = std::upper_bound(p.begin(), p.end(), target);
      g[static_cast<std::size_t>(i)] = it == p.begin() ? p.front() : *(it - 1);
    }
    if (std::find(out.begin(), out.end(), g) == out.end())
      out.push_back(std::move(g));
  }
  return out;
}

std::vector<std::vector<int>> RectBackend::neighbours(
    const std::vector<int>& genome) const {
  std::vector<std::vector<int>> out;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    const std::vector<int>& p = pareto_[i];
    const auto it = std::lower_bound(p.begin(), p.end(), genome[i]);
    if (it == p.end() || *it != genome[i]) continue;  // off-frontier genome
    const auto idx = static_cast<std::size_t>(it - p.begin());
    // One and two Pareto steps each way: symmetric offsets keep the move
    // set reversible (a property the contract test pins), and the 2-step
    // moves let the climb cross single-point ridges the +-1 set stalls on.
    for (int d : {-2, -1, 1, 2}) {
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(idx) + d;
      if (j < 0 || j >= static_cast<std::ptrdiff_t>(p.size())) continue;
      std::vector<int> g = genome;
      g[i] = p[static_cast<std::size_t>(j)];
      out.push_back(std::move(g));
    }
  }
  return out;
}

bool RectBackend::valid(const std::vector<int>& genome) const {
  if (genome.size() != pareto_.size()) return false;
  for (std::size_t i = 0; i < genome.size(); ++i)
    if (!std::binary_search(pareto_[i].begin(), pareto_[i].end(), genome[i]))
      return false;
  return true;
}

namespace {

std::vector<RectItem> genome_items(const BackendColumns& columns,
                                   const std::vector<int>& genome) {
  std::vector<RectItem> items;
  items.reserve(genome.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    const auto col = columns.column(genome[i]);
    items.push_back(RectItem{static_cast<int>(i), genome[i],
                             col->cost[i].time});
  }
  return items;
}

}  // namespace

std::int64_t RectBackend::lower_bound(const std::vector<int>& genome) const {
  return rect_area_bound(opts_->width, genome_items(columns_, genome));
}

RectPacking RectBackend::pack(const std::vector<int>& genome) const {
  if (genome.size() != pareto_.size())
    throw std::invalid_argument("RectBackend::pack: genome size != cores");
  RectPacking p = pack_rectangles(opts_->width, genome_items(columns_, genome));
  packs_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

std::pair<std::int64_t, std::int64_t> RectBackend::score(
    const std::vector<int>& genome) const {
  if (genome.size() != pareto_.size())
    throw std::invalid_argument("RectBackend::score: genome size != cores");
  {
    std::lock_guard<std::mutex> lock(score_mu_);
    auto it = score_memo_.find(genome);
    if (it != score_memo_.end()) {
      score_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const RectPacking packing =
      pack_rectangles(opts_->width, genome_items(columns_, genome));
  packs_.fetch_add(1, std::memory_order_relaxed);
  std::int64_t volume = 0;
  for (std::size_t i = 0; i < genome.size(); ++i)
    volume += columns_.column(genome[i])->cost[i].volume_bits;
  const std::pair<std::int64_t, std::int64_t> sc{packing.makespan(), volume};
  std::lock_guard<std::mutex> lock(score_mu_);
  score_memo_.emplace(genome, sc);  // racing computes are identical
  return sc;
}

OptimizationResult RectBackend::evaluate(const std::vector<int>& genome) const {
  if (genome.size() != pareto_.size())
    throw std::invalid_argument("RectBackend::evaluate: genome size != cores");
  {
    std::lock_guard<std::mutex> lock(memo_.mu);
    auto it = memo_.results.find(genome);
    if (it != memo_.results.end()) {
      memo_.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    memo_.misses.fetch_add(1, std::memory_order_relaxed);
  }

  const int W = opts_->width;
  const RectPacking packing = pack_rectangles(W, genome_items(columns_, genome));
  packs_.fetch_add(1, std::memory_order_relaxed);

  // Materialize the packing as W one-wire buses: entry.bus = the starting
  // wire, so every index in the result (ate_memory, gantt, validate) stays
  // in range. Entries are in placement order — later rectangles touching a
  // wire start at or after earlier ones' ends, which is exactly the
  // gap-allowed cursor invariant Schedule::validate checks.
  Schedule schedule;
  schedule.bus_finish.assign(static_cast<std::size_t>(W), 0);
  std::vector<BusAccessCost> resolved(genome.size());
  for (const PlacedRect& r : packing.rects) {
    const auto core = static_cast<std::size_t>(r.id);
    resolved[core] = columns_.column(genome[core])->cost[core];
    ScheduleEntry e;
    e.core = r.id;
    e.bus = r.x;
    e.start = r.start;
    e.end = r.start + r.time;
    e.choice = resolved[core].choice;
    schedule.bus_finish[static_cast<std::size_t>(r.x)] = e.end;
    schedule.total_volume_bits += resolved[core].volume_bits;
    schedule.entries.push_back(std::move(e));
  }

  TamArchitecture arch;
  arch.widths.assign(static_cast<std::size_t>(W), 1);
  std::vector<BusRealization> buses(static_cast<std::size_t>(W),
                                    opt_->realize_bus(1, *opts_));
  const CostFn cost = [&resolved](int core, int /*bus*/) {
    return resolved[static_cast<std::size_t>(core)];
  };
  OptimizationResult r =
      opt_->materialize(arch, *opts_, std::move(buses), cost,
                        std::move(schedule));
  r.backend = BackendKind::Rect;

  std::lock_guard<std::mutex> lock(memo_.mu);
  memo_.results.emplace(genome, r);  // racing computes are identical
  return r;
}

OptimizationResult optimize_rect(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts) {
  std::string why;
  if (!rect_supported(opts, &why))
    throw std::invalid_argument("optimize_rect: " + why);
  const auto t0 = std::chrono::steady_clock::now();
  runtime::PhaseTimer timer("search");

  RectBackend backend(optimizer, opts);
  const std::vector<std::vector<int>> starts = backend.starts();
  runtime::ParallelOptions par;
  par.cancel = opts.cancel;

  std::atomic<std::uint64_t> generated{0};
  std::atomic<std::uint64_t> pruned{0};
  using Score = std::pair<std::int64_t, std::int64_t>;  // (time, volume)
  // The climb runs entirely on score() — packing makespan + genome volume,
  // no wiring/decompressor materialization — and returns its final genome;
  // only those (one per start) are evaluated in full below. score() and
  // evaluate() rank genomes identically, so the trajectory is the same.
  const auto climb = [&](const std::vector<int>& start) {
    std::vector<int> g = start;
    Score cur = backend.score(g);

    // Pick the best improving candidate from a batch (index-order
    // reduction, so ties are deterministic). Returns true when cur/g moved.
    const auto take_best = [&](const std::vector<std::vector<int>>& cand) {
      generated.fetch_add(cand.size(), std::memory_order_relaxed);
      std::vector<std::size_t> survivors;
      for (std::size_t j = 0; j < cand.size(); ++j) {
        if (backend.lower_bound(cand[j]) > cur.first)
          pruned.fetch_add(1, std::memory_order_relaxed);
        else
          survivors.push_back(j);
      }
      std::vector<Score> results = runtime::parallel_map(
          survivors, [&](std::size_t j) { return backend.score(cand[j]); },
          par);
      bool improved = false;
      for (std::size_t j = 0; j < survivors.size(); ++j) {
        if (results[j] < cur) {
          cur = results[j];
          g = cand[survivors[j]];
          improved = true;
        }
      }
      return improved;
    };

    const std::vector<std::vector<int>>& pareto = backend.pareto_widths();
    const bool big =
        static_cast<int>(pareto.size()) > RectBackend::kBigSocCores;

    // Steepest descent over the +-1/+-2 neighbourhood. Skipped above
    // kBigSocCores: a step pays n * 4 packings to move ONE core, while a
    // coordinate-descent pass below moves up to n cores for n * window
    // packings — on big SOCs the polish alone converges far cheaper.
    if (!big) {
      for (int step = 0; step < opts.max_search_steps; ++step) {
        if (opts.cancel) opts.cancel->check();
        if (!take_best(backend.neighbours(g))) break;
      }
    }
    const auto pareto_index = [&](std::size_t core) {
      const std::vector<int>& p = pareto[core];
      return static_cast<std::size_t>(
          std::lower_bound(p.begin(), p.end(), g[core]) - p.begin());
    };

    for (int round = 0; round < opts.max_search_steps; ++round) {
      // Coordinate-descent polish: each core in id order tries its Pareto
      // frontier holding the rest fixed (the FULL frontier on small SOCs,
      // a +-4-step window above kBigSocCores), until a whole pass finds
      // nothing. Crosses ridges the fixed-offset neighbourhood cannot, and
      // stays deterministic (core order and the reduction fix every tie).
      for (int pass = 0; pass < opts.max_search_steps; ++pass) {
        if (opts.cancel) opts.cancel->check();
        bool improved = false;
        for (std::size_t i = 0; i < g.size(); ++i) {
          const std::size_t gi = pareto_index(i);
          std::vector<std::vector<int>> cand;
          for (std::size_t wi = 0; wi < pareto[i].size(); ++wi) {
            const int w = pareto[i][wi];
            if (w == g[i]) continue;
            if (big && (wi + 4 < gi || wi > gi + 4)) continue;
            std::vector<int> c = g;
            c[i] = w;
            cand.push_back(std::move(c));
          }
          if (take_best(cand)) improved = true;
        }
        if (!improved) break;
      }
      // Critical-pair kick: give wires to a core that finishes at the
      // makespan (one Pareto step up) while taking them from another (one
      // step down) — the joint move single-coordinate descent cannot see.
      // One improving kick re-enters the polish; no kick ends the climb.
      // The critical set comes from the packing score() already memoized.
      const RectPacking packing = backend.pack(g);
      std::vector<std::vector<int>> kicks;
      int critical_seen = 0;
      for (const PlacedRect& r : packing.rects) {
        if (r.start + r.time != cur.first) continue;
        if (big && ++critical_seen > 4) break;
        const auto c = static_cast<std::size_t>(r.id);
        const std::size_t ci = pareto_index(c);
        if (ci + 1 >= pareto[c].size()) continue;
        for (std::size_t o = 0; o < g.size(); ++o) {
          if (o == c) continue;
          const std::size_t oi = pareto_index(o);
          if (oi == 0) continue;
          std::vector<int> k = g;
          k[c] = pareto[c][ci + 1];
          k[o] = pareto[o][oi - 1];
          kicks.push_back(std::move(k));
        }
      }
      if (!take_best(kicks)) break;
    }
    return g;
  };

  const std::vector<std::vector<int>> finals =
      runtime::parallel_map(starts, climb, par);
  const std::vector<OptimizationResult> climbed = runtime::parallel_map(
      finals, [&](const std::vector<int>& g) { return backend.evaluate(g); },
      par);
  OptimizationResult best;
  bool have_best = false;
  for (const OptimizationResult& r : climbed) {
    if (!have_best || better_result(r, best)) {
      best = r;
      have_best = true;
    }
  }

  runtime::SearchStats st;
  st.candidates_generated = generated.load(std::memory_order_relaxed);
  st.candidates_pruned = pruned.load(std::memory_order_relaxed);
  st.candidates_scheduled = backend.packs();
  st.rect_packs = backend.packs();
  st.rect_memo_hits = backend.memo_hits();
  runtime::add_search_counters(st);

  const auto t1 = std::chrono::steady_clock::now();
  best.cpu_seconds = std::chrono::duration<double>(t1 - t0).count();
  return best;
}

}  // namespace soctest
