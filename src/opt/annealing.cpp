#include "opt/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "socgen/rng.hpp"
#include "tam/partition.hpp"

namespace soctest {
namespace {

// Neighbour move on a partition: wire transfer, bus split, or bus merge.
TamArchitecture random_neighbour(const TamArchitecture& arch, int max_buses,
                                 Rng& rng) {
  TamArchitecture n = arch;
  const int k = n.num_buses();
  const int move = static_cast<int>(rng.next_below(3));
  if (move == 0 && k >= 2) {
    // Move one wire between two distinct buses.
    const int from = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int to = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (to >= from) ++to;
    if (n.widths[static_cast<std::size_t>(from)] > 1) {
      n.widths[static_cast<std::size_t>(from)] -= 1;
      n.widths[static_cast<std::size_t>(to)] += 1;
    }
  } else if (move == 1 && k < max_buses) {
    // Split a bus with width >= 2.
    const int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    const int w = n.widths[static_cast<std::size_t>(b)];
    if (w >= 2) {
      const int left = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(w - 1)));
      n.widths[static_cast<std::size_t>(b)] = left;
      n.widths.push_back(w - left);
    }
  } else if (k >= 2) {
    // Merge two buses.
    const int a = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (b >= a) ++b;
    n.widths[static_cast<std::size_t>(std::min(a, b))] +=
        n.widths[static_cast<std::size_t>(std::max(a, b))];
    n.widths.erase(n.widths.begin() + std::max(a, b));
  }
  return n;
}

}  // namespace

OptimizationResult optimize_annealing(const SocOptimizer& optimizer,
                                      const OptimizerOptions& opts,
                                      const AnnealingOptions& anneal) {
  Rng rng(anneal.seed);
  const int kmax = std::min({opts.max_buses, optimizer.soc().num_cores(),
                             opts.width});
  TamArchitecture current =
      balanced_partition(opts.width, std::max(1, kmax / 2));
  OptimizationResult cur_r = optimizer.evaluate(current, opts);
  OptimizationResult best = cur_r;

  double temperature =
      anneal.initial_temperature * static_cast<double>(cur_r.test_time);
  for (int it = 0; it < anneal.iterations; ++it) {
    const TamArchitecture cand =
        random_neighbour(current, kmax, rng);
    if (cand.num_buses() < 1 || cand.total_width() != opts.width) continue;
    const OptimizationResult r = optimizer.evaluate(cand, opts);
    const double delta =
        static_cast<double>(r.test_time - cur_r.test_time);
    if (delta <= 0.0 ||
        (temperature > 1e-9 &&
         rng.next_double() < std::exp(-delta / temperature))) {
      current = cand;
      cur_r = r;
      if (cur_r.test_time < best.test_time ||
          (cur_r.test_time == best.test_time &&
           cur_r.data_volume_bits < best.data_volume_bits)) {
        best = cur_r;
      }
    }
    temperature *= anneal.cooling;
  }
  return best;
}

}  // namespace soctest
