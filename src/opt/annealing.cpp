#include "opt/annealing.hpp"

#include "opt/anneal_walk.hpp"
#include "runtime/stats.hpp"

namespace soctest {

// The walk body lives in opt/anneal_walk.cpp so the replica-exchange
// portfolio (src/portfolio) can drive the identical stepper sweep-by-sweep;
// this driver just runs one walk to completion. The incremental path
// (opts.incremental, the default) routes every proposal through a
// DeltaEvaluator — cached per-width cost columns, width-vector memoization,
// and lower-bound rejection of provably-uphill proposals — bit-identical to
// the scratch path including the RNG stream (the argument is spelled out in
// AnnealWalk::step).
OptimizationResult optimize_annealing(const SocOptimizer& optimizer,
                                      const OptimizerOptions& opts,
                                      const AnnealingOptions& anneal) {
  return optimize_annealing_shared(optimizer, opts, anneal, nullptr, nullptr);
}

OptimizationResult optimize_annealing_shared(const SocOptimizer& optimizer,
                                             const OptimizerOptions& opts,
                                             const AnnealingOptions& anneal,
                                             ScheduleMemo* memo,
                                             ColumnCache* columns) {
  AnnealWalk walk(optimizer, opts, anneal, memo, columns);
  while (!walk.done()) {
    if (opts.cancel) opts.cancel->check();
    walk.step();
  }
  runtime::add_search_counters(walk.counters());
  return walk.best();
}

}  // namespace soctest
