#include "opt/annealing.hpp"

#include "opt/anneal_walk.hpp"
#include "runtime/stats.hpp"

namespace soctest {

// The walk body lives in opt/anneal_walk.cpp so the replica-exchange
// portfolio (src/portfolio) can drive the identical stepper sweep-by-sweep;
// this driver just runs one walk to completion. The incremental path
// (opts.incremental, the default) routes every proposal through a
// DeltaEvaluator — cached per-width cost columns, width-vector memoization,
// and lower-bound rejection of provably-uphill proposals — bit-identical to
// the scratch path including the RNG stream (the argument is spelled out in
// AnnealWalk::step).
OptimizationResult optimize_annealing(const SocOptimizer& optimizer,
                                      const OptimizerOptions& opts,
                                      const AnnealingOptions& anneal) {
  AnnealWalk walk(optimizer, opts, anneal);
  while (!walk.done()) walk.step();
  runtime::add_search_counters(walk.counters());
  return walk.best();
}

}  // namespace soctest
