#include "opt/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "opt/delta_evaluator.hpp"
#include "runtime/stats.hpp"
#include "socgen/rng.hpp"
#include "tam/partition.hpp"

namespace soctest {
namespace {

// Neighbour move on a partition: wire transfer, bus split, or bus merge.
TamArchitecture random_neighbour(const TamArchitecture& arch, int max_buses,
                                 Rng& rng) {
  TamArchitecture n = arch;
  const int k = n.num_buses();
  const int move = static_cast<int>(rng.next_below(3));
  if (move == 0 && k >= 2) {
    // Move one wire between two distinct buses.
    const int from = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int to = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (to >= from) ++to;
    if (n.widths[static_cast<std::size_t>(from)] > 1) {
      n.widths[static_cast<std::size_t>(from)] -= 1;
      n.widths[static_cast<std::size_t>(to)] += 1;
    }
  } else if (move == 1 && k < max_buses) {
    // Split a bus with width >= 2.
    const int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    const int w = n.widths[static_cast<std::size_t>(b)];
    if (w >= 2) {
      const int left = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(w - 1)));
      n.widths[static_cast<std::size_t>(b)] = left;
      n.widths.push_back(w - left);
    }
  } else if (k >= 2) {
    // Merge two buses.
    const int a = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (b >= a) ++b;
    n.widths[static_cast<std::size_t>(std::min(a, b))] +=
        n.widths[static_cast<std::size_t>(std::max(a, b))];
    n.widths.erase(n.widths.begin() + std::max(a, b));
  }
  return n;
}

}  // namespace

// The incremental path (opts.incremental, the default) routes every
// proposal through a DeltaEvaluator: per-width cost columns are cached
// across proposals (an SA move disturbs at most two widths), results are
// memoized by width vector (SA revisits architectures constantly — far
// more than the hill climb, since rejected proposals re-propose later and
// accepted ones walk back), and the admissible lower bound rejects
// provably-hopeless proposals without running the scheduler.
//
// Bit-identity with the scratch path hinges on two facts:
//  1. Evaluation never consumes RNG, so memo hits leave the stream intact.
//  2. A bound-based rejection is taken only when the scratch path's
//     acceptance test is certain to reject with the SAME draws. Cold
//     (temperature <= 1e-9): delta > 0 rejects without drawing, and
//     bound > incumbent implies delta > 0. Warm: the scratch path draws
//     u and accepts iff u < exp(-delta/T); we draw the same u first,
//     probe the bound at the acceptance limit T*(-ln u) above the
//     incumbent, and reject only when u >= exp(-lb_delta/T) for the
//     certified bound value, which (exp monotone, delta >= lb_delta)
//     implies u >= exp(-delta/T). Otherwise the bound is inconclusive —
//     evaluate fully and replay the exact comparison with that same u.
OptimizationResult optimize_annealing(const SocOptimizer& optimizer,
                                      const OptimizerOptions& opts,
                                      const AnnealingOptions& anneal) {
  Rng rng(anneal.seed);
  const int kmax = std::min({opts.max_buses, optimizer.soc().num_cores(),
                             opts.width});

  std::optional<DeltaEvaluator> ev;
  if (opts.incremental) ev.emplace(optimizer, opts);
  runtime::SearchStats scratch_stats;  // scratch path's counters

  const auto evaluate = [&](const TamArchitecture& arch) {
    if (ev) {
      ev->prepare({arch});
      return ev->evaluate(arch);
    }
    ++scratch_stats.candidates_scheduled;
    return optimizer.evaluate(arch, opts);
  };

  TamArchitecture current =
      balanced_partition(opts.width, std::max(1, kmax / 2));
  OptimizationResult cur_r = evaluate(current);
  OptimizationResult best = cur_r;

  double temperature =
      anneal.initial_temperature * static_cast<double>(cur_r.test_time);
  for (int it = 0; it < anneal.iterations; ++it) {
    const TamArchitecture cand =
        random_neighbour(current, kmax, rng);
    if (cand.num_buses() < 1 || cand.total_width() != opts.width) continue;

    bool accept;
    OptimizationResult r;
    if (ev) {
      ev->note_anneal_proposals(1);
      ev->prepare({cand});
      std::optional<double> drawn_u;
      if (ev->bound_exceeds(cand, cur_r.test_time)) {
        // Certainly uphill. The scratch path would reject outright when
        // cold (no draw), or draw u — consume the identical draw here and
        // reject when even the bound's optimistic delta cannot pass.
        if (temperature <= 1e-9) {
          ev->note_anneal_pruned(1);
          temperature *= anneal.cooling;
          continue;
        }
        const double u = rng.next_double();
        // The scratch path accepts iff u < exp(-delta/T), which needs
        // delta < T * (-ln u). Probe the bound once at that limit:
        // bound_exceeds(probe) certifies lb >= probe + 1, a concrete
        // admissible value to replay the scratch exp-test against. The
        // log/floor only PICK the probe point — a badly rounded probe
        // merely forfeits a prune, never flips a decision, because the
        // final test is the same u-vs-exp comparison the scratch path
        // would make with any delta >= probe + 1 - incumbent.
        const double limit = static_cast<double>(cur_r.test_time) +
                             temperature * (-std::log(u));
        if (limit < 9.0e18) {
          const std::int64_t probe =
              static_cast<std::int64_t>(std::floor(limit));
          if (ev->bound_exceeds(cand, probe)) {
            const double lb_delta =
                static_cast<double>(probe + 1 - cur_r.test_time);
            if (u >= std::exp(-lb_delta / temperature)) {
              ev->note_anneal_pruned(1);
              temperature *= anneal.cooling;
              continue;
            }
          }
        }
        drawn_u = u;  // inconclusive: replay the exact test with this u
      }
      r = ev->evaluate(cand);
      const double delta =
          static_cast<double>(r.test_time - cur_r.test_time);
      if (drawn_u) {
        accept = *drawn_u < std::exp(-delta / temperature);
      } else {
        accept = delta <= 0.0 ||
                 (temperature > 1e-9 &&
                  rng.next_double() < std::exp(-delta / temperature));
      }
    } else {
      ++scratch_stats.anneal_proposals;
      r = evaluate(cand);
      const double delta =
          static_cast<double>(r.test_time - cur_r.test_time);
      accept = delta <= 0.0 ||
               (temperature > 1e-9 &&
                rng.next_double() < std::exp(-delta / temperature));
    }

    if (accept) {
      current = cand;
      cur_r = std::move(r);
      if (cur_r.test_time < best.test_time ||
          (cur_r.test_time == best.test_time &&
           cur_r.data_volume_bits < best.data_volume_bits)) {
        best = cur_r;
      }
    }
    temperature *= anneal.cooling;
  }

  if (ev) {
    runtime::SearchStats s = ev->counters();
    s.anneal_memo_hits = s.schedule_reuse_hits;
    runtime::add_search_counters(s);
  } else {
    runtime::add_search_counters(scratch_stats);
  }
  return best;
}

}  // namespace soctest
