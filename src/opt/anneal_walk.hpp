// AnnealWalk: one simulated-annealing walk over TAM partitions, exposed as
// a stepper instead of a run-to-completion loop. optimize_annealing() is a
// thin driver over it; the replica-exchange portfolio (src/portfolio) runs
// K of them concurrently, exchanging configurations between sweeps while
// every walk keeps its own RNG stream — which is why the walk must be
// steppable, checkpointable (save_state()/restore_state()), and able to
// swap its current configuration without consuming a draw.
//
// Stepping semantics are bit-identical to the original optimize_annealing
// loop for both evaluation strategies (OptimizerOptions::incremental on and
// off), including the RNG stream — the incremental path's memo hits and
// bound rejections never change which draws happen (see annealing.hpp for
// the argument). Sharing a ScheduleMemo/ColumnCache across walks is
// invisible in the trajectory too: a memoized result is the exact result,
// no matter which walk computed it first.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "opt/annealing.hpp"
#include "opt/delta_evaluator.hpp"
#include "socgen/rng.hpp"

namespace soctest {

/// Everything needed to resume a walk mid-stream: the RNG words, the
/// iteration cursor, the exact temperature bits, and the current/best
/// architectures (their OptimizationResults are re-derived on restore —
/// evaluation is a deterministic function of the width vector).
struct AnnealWalkState {
  Rng::State rng{};
  std::int64_t iteration = 0;
  std::uint64_t temperature_bits = 0;
  std::uint64_t proposals = 0;
  std::vector<int> current_widths;
  std::vector<int> best_widths;
};

class AnnealWalk {
 public:
  /// `optimizer` must outlive the walk; `opts` and `anneal` are copied.
  /// `memo`/`columns` optionally share caches with other walks (portfolio);
  /// null gives the walk private ones. Construction evaluates the balanced
  /// starting partition (no RNG is consumed).
  AnnealWalk(const SocOptimizer& optimizer, const OptimizerOptions& opts,
             const AnnealingOptions& anneal, ScheduleMemo* memo = nullptr,
             ColumnCache* columns = nullptr);
  AnnealWalk(const AnnealWalk&) = delete;
  AnnealWalk& operator=(const AnnealWalk&) = delete;

  /// One annealing iteration: propose a neighbour, evaluate (through the
  /// delta evaluator when opts.incremental), accept/reject, cool. No-op
  /// once done().
  void step();

  bool done() const { return it_ >= anneal_.iterations; }
  std::int64_t iteration() const { return it_; }
  /// Valid proposals so far (survives checkpoint/restore, unlike the
  /// evaluator's counters, which restart per process).
  std::uint64_t proposals() const { return proposals_; }
  double temperature() const { return temperature_; }
  const TamArchitecture& current_arch() const { return current_; }
  const OptimizationResult& current_result() const { return cur_r_; }
  const OptimizationResult& best() const { return best_; }

  /// Replica exchange: swaps the two walks' current configurations
  /// (architecture + result) in place. Temperatures, RNG streams and
  /// iteration cursors stay put — the ladder slots keep their identity.
  /// Each walk's incumbent best is updated against its incoming
  /// configuration, exactly as an accepted move would.
  static void exchange(AnnealWalk& a, AnnealWalk& b);

  /// One half of exchange(), for when the partner lives in another
  /// process: replaces the current configuration with `widths` and
  /// re-evaluates it (deterministic, so the result equals the partner's),
  /// updating the incumbent best exactly like exchange() would. RNG,
  /// temperature and iteration cursor stay put.
  void adopt_current(const std::vector<int>& widths);

  /// Exact temperature bits, for shipping across processes (doubles
  /// round-tripped through text would drift; bits never do).
  std::uint64_t temperature_bits() const;
  /// Installs exact temperature bits (adaptive-ladder retuning at sweep
  /// barriers; the distributed coordinator sends these).
  void set_temperature_bits(std::uint64_t bits);

  AnnealWalkState save_state() const;
  /// Restores a save_state() snapshot: the next step() continues the exact
  /// draw sequence of the saved walk. Re-evaluates the saved architectures
  /// (deterministic), so the shared memo absorbs the cost on later hits.
  void restore_state(const AnnealWalkState& st);

  /// Counter snapshot for runtime::add_search_counters(); on the
  /// incremental path anneal_memo_hits mirrors schedule_reuse_hits, like
  /// optimize_annealing always reported.
  runtime::SearchStats counters() const;

 private:
  OptimizationResult evaluate(const TamArchitecture& arch);

  const SocOptimizer* opt_;
  OptimizerOptions opts_;  // owned copy: ev_ points into it
  AnnealingOptions anneal_;
  Rng rng_;
  int kmax_ = 1;
  std::optional<DeltaEvaluator> ev_;
  runtime::SearchStats scratch_stats_;  // scratch path's counters
  TamArchitecture current_;
  OptimizationResult cur_r_;
  OptimizationResult best_;
  double temperature_ = 0.0;
  std::int64_t it_ = 0;
  std::uint64_t proposals_ = 0;
};

}  // namespace soctest
