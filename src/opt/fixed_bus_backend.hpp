// The paper's fixed-width-bus architecture model behind the
// ArchitectureBackend interface. The genome IS the bus width vector; the
// start set and neighbourhood are the exact functions the pre-backend
// optimize() used (tam/hill_climb_starts, tam/wire_move_neighbours), and
// evaluation delegates to SocOptimizer::evaluate — so a hill climb driven
// through this interface walks the identical search space, and the plain
// optimize() path needs no adapter at all (it stays byte-identical by
// simply not changing).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "opt/backend.hpp"

namespace soctest {

class FixedBusBackend : public ArchitectureBackend {
 public:
  /// `optimizer`/`opts` must outlive the backend. Requires opts.width >= 1
  /// and a non-FixedWidth4 mode (FixedWidth4 prescribes its architecture —
  /// there is nothing to search).
  FixedBusBackend(const SocOptimizer& optimizer, const OptimizerOptions& opts);

  BackendKind kind() const override { return BackendKind::FixedBus; }
  std::string name() const override { return "fixed-bus"; }
  std::vector<std::vector<int>> starts() const override;
  std::vector<std::vector<int>> neighbours(
      const std::vector<int>& genome) const override;
  bool valid(const std::vector<int>& genome) const override;
  std::int64_t lower_bound(const std::vector<int>& genome) const override;
  OptimizationResult evaluate(const std::vector<int>& genome) const override;

 private:
  const SocOptimizer* opt_;
  const OptimizerOptions* opts_;
  BackendColumns columns_;
  mutable ScheduleMemo memo_;  // keyed by bus width vectors — never shared
                               // with another backend's genome space
};

}  // namespace soctest
