// Rectangle-packing architecture backend (PAPERS.md's rectangle-bin-
// packing line, arXiv:1008.4448 / 1008.3320, under TDC). Each core picks a
// width from its PARETO-OPTIMAL wrapper points — the widths where its test
// time strictly improves over every narrower width, read off the same cost
// columns the fixed-bus search uses — and becomes a (width x time)
// rectangle; sched/rect_packer packs the rectangles into the W-wide TAM
// strip with the deterministic best-fit-decreasing skyline construction.
// The genome is the per-core width vector; a move steps one core to an
// adjacent Pareto point.
//
// The packed result is materialized through SocOptimizer::materialize as W
// one-wire buses: entry.bus is the rectangle's starting wire, so the
// existing reporting/validation machinery (Schedule::validate, gantt, ATE
// memory) reads a packing like any schedule. The search (optimize_rect) is
// a multi-start hill climb over the Pareto genomes, bit-identical for any
// --jobs and independent of the fixed-bus trajectory — which is what makes
// `--backend race` reproducible across (workers x jobs) splits.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "opt/backend.hpp"
#include "sched/rect_packer.hpp"

namespace soctest {

/// True iff `opts` lie in the rectangle backend's supported slice: PerCore
/// or NoTdc mode, TamWidth constraint, default scheduling scenario (no
/// power budget, no preemption, no hierarchy). `why` (optional) receives
/// the reason when not.
bool rect_supported(const OptimizerOptions& opts, std::string* why = nullptr);

class RectBackend : public ArchitectureBackend {
 public:
  /// Above this core count the search trims its start portfolio and
  /// polish windows (deterministically — a function of the core count
  /// alone); below it every frontier is explored in full.
  static constexpr int kBigSocCores = 48;

  /// Builds the per-core Pareto width sets (all cost columns 1..W).
  /// Throws std::invalid_argument when !rect_supported(opts) or width < 1.
  /// `optimizer`/`opts` must outlive the backend.
  RectBackend(const SocOptimizer& optimizer, const OptimizerOptions& opts);

  BackendKind kind() const override { return BackendKind::Rect; }
  std::string name() const override { return "rect"; }
  std::vector<std::vector<int>> starts() const override;
  std::vector<std::vector<int>> neighbours(
      const std::vector<int>& genome) const override;
  bool valid(const std::vector<int>& genome) const override;
  /// rect_area_bound over the genome's rectangles — admissible for ANY
  /// packing, not just the best-fit one evaluate() constructs.
  std::int64_t lower_bound(const std::vector<int>& genome) const override;
  OptimizationResult evaluate(const std::vector<int>& genome) const override;

  /// Ascending Pareto-optimal widths per core (first entry is always 1).
  const std::vector<std::vector<int>>& pareto_widths() const {
    return pareto_;
  }

  /// The genome's skyline packing (the same construction evaluate()
  /// materializes). Exposed for the climb's critical-set probe and the
  /// fuzz tests.
  RectPacking pack(const std::vector<int>& genome) const;

  /// The climb's fast path: (makespan, data volume) of the genome's
  /// packing, without materializing the full OptimizationResult — the
  /// packing is rebuilt, the wiring/decompressor models are not. Memoized;
  /// agrees exactly with evaluate()'s (test_time, data_volume_bits).
  std::pair<std::int64_t, std::int64_t> score(
      const std::vector<int>& genome) const;

  /// Observability: packings built / genome-memo hits so far.
  std::uint64_t packs() const {
    return packs_.load(std::memory_order_relaxed);
  }
  std::uint64_t memo_hits() const {
    return memo_.hits.load(std::memory_order_relaxed) +
           score_hits_.load(std::memory_order_relaxed);
  }

 private:
  const SocOptimizer* opt_;
  const OptimizerOptions* opts_;
  BackendColumns columns_;
  std::vector<std::vector<int>> pareto_;  // per core, ascending widths
  mutable ScheduleMemo memo_;  // keyed by per-core width vectors — never
                               // shared with another backend's genome space
  mutable std::mutex score_mu_;
  mutable std::unordered_map<std::vector<int>,
                             std::pair<std::int64_t, std::int64_t>,
                             WidthVectorHash>
      score_memo_;
  mutable std::atomic<std::uint64_t> score_hits_{0};
  mutable std::atomic<std::uint64_t> packs_{0};
};

/// Deterministic multi-start hill climb over the rect backend's Pareto
/// genomes: starts at five Pareto-index fractions, batches each
/// neighbourhood through runtime::parallel_map with area-bound pruning,
/// reduces in index order — bit-identical for any --jobs. Flushes
/// rect_packs/rect_memo_hits into runtime::collect_stats(). Throws
/// std::invalid_argument when !rect_supported(opts).
OptimizationResult optimize_rect(const SocOptimizer& optimizer,
                                 const OptimizerOptions& opts);

}  // namespace soctest
