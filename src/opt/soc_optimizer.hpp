// SocOptimizer: the paper's co-optimization of test-data compression, test
// architecture and test schedule (Section 3). Given a SOC and a width
// budget it:
//   1-2. builds per-core lookup tables (wrapper designs + all decompressor
//        geometries) via src/explore;
//   3.   partitions the budget into fixed-width test buses, improved by a
//        single-wire-move local search over bus counts 1..max_buses;
//   4.   schedules cores onto buses longest-test-first, assigning each core
//        where the SOC test-time increase is least.
//
// Four architecture styles are supported:
//   NoTdc       Figure 4(a): plain wrapper access, no compression.
//   PerTam      Figure 4(b): one decompressor per bus (SOC-level expansion;
//               behavioural stand-in for virtual-TAM methods like [18]).
//   PerCore     Figure 4(c): one decompressor per core — the paper's method.
//   FixedWidth4 fixed 4-wire per-core decompressor interfaces with
//               serialized codeword delivery (stand-in for [11]).
// and two budget interpretations:
//   TamWidth    budget bounds the on-chip TAM wires (paper Table 2/3).
//   AteChannels budget bounds the ATE interface width (paper Table 1).
// For PerCore the two coincide; for PerTam they differ sharply — the
// paper's argument for core-level expansion.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dft/soc_spec.hpp"
#include "explore/core_explorer.hpp"
#include "hier/hierarchy.hpp"
#include "runtime/cancellation.hpp"
#include "scenario/scenario.hpp"
#include "sched/schedule.hpp"
#include "tam/tam_architecture.hpp"
#include "tam/wiring_cost.hpp"

namespace soctest {

struct ScheduleMemo;   // opt/delta_evaluator.hpp
struct ColumnCache;    // opt/delta_evaluator.hpp

enum class ArchMode { NoTdc, PerTam, PerCore, FixedWidth4 };
enum class ConstraintMode { TamWidth, AteChannels };

/// Which architecture model the step-3 search runs over (opt/backend.hpp).
///   FixedBus  the paper's fixed-width buses (every driver; the default).
///   Rect      flexible-width rectangle packing (opt/rect_backend) — each
///             core picks a width from its Pareto-optimal wrapper points
///             and the cores are packed into the W-wire strip.
///   Race      run the fixed-bus search unchanged, then race the
///             deterministic rect search beside it and keep the better
///             result. Valid in OptimizerOptions only; OptimizationResult
///             records the backend that actually produced the winner.
/// Numeric values are wire-format: checkpoint v3 and the dist init frame
/// carry them, so they must never be renumbered.
enum class BackendKind { FixedBus = 0, Rect = 1, Race = 2 };

std::string to_string(ArchMode m);
std::string to_string(ConstraintMode c);
std::string to_string(BackendKind b);

struct OptimizerOptions {
  int width = 32;  // W_TAM or W_ATE depending on `constraint`
  ArchMode mode = ArchMode::PerCore;
  ConstraintMode constraint = ConstraintMode::TamWidth;
  int max_buses = 8;
  /// Cap on local-search iterations per bus count (safety valve).
  int max_search_steps = 200;
  /// Peak concurrent test power budget in model milliwatts; 0 disables the
  /// constraint (extension beyond the paper — see src/power).
  double power_budget_mw = 0.0;
  /// Allow a core's test to split into segments under the power budget,
  /// resuming on the same bus (sched/preemptive_scheduler). Meaningless
  /// without a power budget — the scenario engine normalizes
  /// preempt-without-cap to the plain scheduler. Together with
  /// `hierarchical` and `power_budget_mw` this selects the scenario's
  /// SchedulerBackend (src/scenario); the default picks the step-4 greedy
  /// scheduler, byte-identical to pre-scenario builds.
  bool preemptive = false;
  /// Enforce ancestor/descendant mutual exclusion from the SOC's core
  /// hierarchy (SocSpec::hierarchy_parent; a SOC without one is flat, so
  /// no pair conflicts but the hier scheduler's earliest-fit placement
  /// still differs from the greedy packing).
  bool hierarchical = false;
  /// Step-3 candidate evaluation strategy. true (default): the incremental
  /// engine — per-width cost columns cached across single-wire moves, a
  /// makespan lower bound prunes hopeless candidates before scheduling, and
  /// the surviving neighbourhood is batched on the runtime pool. false: the
  /// original evaluate-every-neighbour loop. Both return bit-identical
  /// results; the flag exists for the equivalence tests and the
  /// BENCH_search ablation.
  bool incremental = true;
  /// Lower bound the incremental pruner uses. true (default): the
  /// bus-capacity bound (sched/schedule_capacity_bound) — tighter on skewed
  /// partitions, where the work-conservation bound lets most candidates
  /// survive. false: the plain work-conservation bound. Both are admissible,
  /// so the flag changes how many candidates are pruned before scheduling
  /// but never which architecture wins — results stay bit-identical.
  bool capacity_bound = true;
  /// Replica count for the replica-exchange search portfolio
  /// (src/portfolio): K annealing walks at a geometric temperature ladder
  /// sharing one ScheduleMemo/ColumnCache, racing the multi-start hill
  /// climb. 0 (default) = off; optimize() itself ignores the field — the
  /// CLI and benches dispatch to optimize_portfolio() when it is set, so
  /// the opt layer stays free of a portfolio dependency.
  int portfolio = 0;
  /// Architecture backend the search runs over. optimize()/optimize_shared()
  /// ignore the field (they ARE the fixed-bus backend); the drivers above
  /// them — optimize_backend(), the CLI, run_portfolio, the distributed
  /// coordinator — dispatch on it, keeping the fixed-bus hot path
  /// byte-identical to before the backend split.
  BackendKind backend = BackendKind::FixedBus;
  /// Optional cooperative cancellation for the step-3 search (the server's
  /// per-request deadline/cancel token). Polled between hill-climb steps,
  /// between annealing proposals, and inside the batched parallel loops; a
  /// fired token surfaces as runtime::CancelledError on the caller. Never
  /// fingerprinted — it bounds how long the search runs, not its result.
  const runtime::CancelToken* cancel = nullptr;
};

/// How one bus of the abstract architecture is physically realized.
struct BusRealization {
  int alloc_width = 0;    // share of the constrained budget
  int ate_width = 0;      // ATE channels feeding this bus
  int onchip_width = 0;   // wires routed across the chip
  int m = 0;              // per-TAM decompressor fan-out (PerTam only)
  bool has_decompressor = false;  // bus-level decompressor present
};

struct OptimizationResult {
  ArchMode mode = ArchMode::PerCore;
  ConstraintMode constraint = ConstraintMode::TamWidth;
  TamArchitecture arch;
  std::vector<BusRealization> buses;
  Schedule schedule;
  std::int64_t test_time = 0;        // makespan, clock cycles
  std::int64_t data_volume_bits = 0; // ATE-stored stimulus volume
  WiringMetrics wiring;
  double cpu_seconds = 0.0;          // planning time (tables excluded,
                                     // like the paper's CPU column)
  double peak_power_mw = 0.0;        // peak concurrent test power
  /// Backend that produced this result (FixedBus or Rect — never Race;
  /// a race records its winner). Reports only surface it when != FixedBus
  /// so pre-backend fixed-bus output stays byte-identical.
  BackendKind backend = BackendKind::FixedBus;
  /// Scheduling scenario the schedule was EFFECTIVELY constructed under
  /// (scenario_of(opts) at evaluation time, width always 0, preempt
  /// dropped when there is no cap to preempt for). Reports only
  /// surface it when non-default so pre-scenario output stays
  /// byte-identical. Preemptive scenarios list one schedule entry per
  /// SEGMENT — a core may appear several times, all on its bound bus.
  ScenarioSpec scenario;
};

/// The scheduling scenario encoded in `opts`. The spec's width is always 0
/// (scenario identity never includes the driver's width — fingerprints and
/// session keys hash the width itself).
ScenarioSpec scenario_of(const OptimizerOptions& opts);

/// Applies a scenario cell onto `opts` (the sweep driver's per-cell setup);
/// `s.width` overrides opts.width only when positive.
void apply_scenario(const ScenarioSpec& s, OptimizerOptions& opts);

class SocOptimizer {
 public:
  /// Builds the per-core lookup tables immediately (the expensive part;
  /// reused across optimize() calls). `soc` must outlive the optimizer.
  explicit SocOptimizer(const SocSpec& soc, ExploreOptions explore = {});

  /// Uses caller-provided lookup tables (e.g. built with technique
  /// selection via explore_core_with_selection). One table per core, in
  /// core order.
  SocOptimizer(const SocSpec& soc, std::vector<CoreTable> tables,
               ExploreOptions explore = {});

  const SocSpec& soc() const { return *soc_; }
  const std::vector<CoreTable>& tables() const { return tables_; }
  /// The SOC's core hierarchy (SocSpec::hierarchy_parent, or flat when the
  /// SOC declares none) — what hierarchical scenarios schedule under.
  const HierarchySpec& hierarchy() const { return hierarchy_; }
  /// The exploration options the lookup tables were built with — the
  /// distributed coordinator ships these so workers rebuild identical
  /// tables from the serialized SOC.
  const ExploreOptions& explore_options() const { return explore_; }

  OptimizationResult optimize(const OptimizerOptions& opts) const;

  /// optimize() with externally shared evaluation caches. The portfolio
  /// races the multi-start hill climb against its tempering replicas and
  /// wants both to drink from the same ScheduleMemo/ColumnCache — the
  /// caches must come from the same (optimizer, opts) universe, since memo
  /// entries are keyed by width vector alone. Null pointers fall back to
  /// per-call caches (exactly optimize()). Only the incremental path
  /// touches them.
  OptimizationResult optimize_shared(const OptimizerOptions& opts,
                                     ScheduleMemo* memo,
                                     ColumnCache* columns) const;

  /// Evaluates one concrete architecture (no search) — used by the local
  /// search, by tests, and to reproduce Figure 4's fixed examples.
  OptimizationResult evaluate(const TamArchitecture& arch,
                              const OptimizerOptions& opts) const;

  /// Public face of realize_one for the architecture backends: how a bus
  /// (or a wire lane) of width `v` is physically realized. Depends only on
  /// (mode, constraint, v).
  BusRealization realize_bus(int v, const OptimizerOptions& opts) const {
    return realize_one(v, opts);
  }

  /// Public face of access_cost: what testing `core` over `bus` costs.
  /// Depends only on (core, mode, constraint, bus width) — the property
  /// that lets backends share per-width cost columns.
  BusAccessCost bus_access_cost(int core, const BusRealization& bus,
                                const OptimizerOptions& opts) const {
    return access_cost(core, bus, opts);
  }

  /// Public face of evaluate_scheduled for backends that construct their
  /// own schedule (the rect backend packs rather than runs the greedy
  /// scheduler): materializes metrics + wiring from a finished schedule,
  /// through the exact same code path the fixed-bus evaluations use.
  OptimizationResult materialize(const TamArchitecture& arch,
                                 const OptimizerOptions& opts,
                                 std::vector<BusRealization> buses,
                                 const CostFn& cost, Schedule schedule) const {
    return evaluate_scheduled(arch, opts, std::move(buses), cost,
                              std::move(schedule));
  }

 private:
  friend class DeltaEvaluator;
  struct RealizedBuses;
  std::vector<BusRealization> realize(const TamArchitecture& arch,
                                      const OptimizerOptions& opts) const;
  /// Realization of a single bus of width `v` (depends on nothing else —
  /// the property the delta evaluator's per-width column cache rests on).
  BusRealization realize_one(int v, const OptimizerOptions& opts) const;
  /// Shared back half of evaluate(): schedules `arch` using pre-realized
  /// buses and a cost source, then derives the wiring metrics. Both the
  /// fresh and the incremental (column-cached) paths funnel through here,
  /// so equal costs give structurally identical results.
  OptimizationResult evaluate_with(const TamArchitecture& arch,
                                   const OptimizerOptions& opts,
                                   std::vector<BusRealization> buses,
                                   const CostFn& cost) const;
  /// Final leg of evaluate_with: takes an already-built schedule and
  /// derives metrics + wiring from it. The delta evaluator's warm-start
  /// path builds the schedule itself (patched time matrix, cached core
  /// order) and funnels through here, so warm and cold evaluations share
  /// every line of result materialization.
  OptimizationResult evaluate_scheduled(const TamArchitecture& arch,
                                        const OptimizerOptions& opts,
                                        std::vector<BusRealization> buses,
                                        const CostFn& cost,
                                        Schedule schedule) const;
  BusAccessCost access_cost(int core, const BusRealization& bus,
                            const OptimizerOptions& opts) const;
  /// Best serialized-delivery compressed choice over v wires (FixedWidth4).
  BusAccessCost serialized_best(int core, int v) const;
  /// Chooses the PerTam fan-out m for an ATE width v (minimizes the summed
  /// core test time over the sweep column).
  int choose_per_tam_fanout(int ate_width) const;

  const SocSpec* soc_;
  ExploreOptions explore_;
  std::vector<CoreTable> tables_;
  HierarchySpec hierarchy_;
};

/// The FixedWidth4 baseline's prescribed architecture: 4-wire buses plus
/// one remainder bus (last, so widths stay non-increasing); a budget under
/// 4 wires yields a single narrow bus. Exposed for regression tests.
TamArchitecture fixed_w4_architecture(int total_width);

}  // namespace soctest
