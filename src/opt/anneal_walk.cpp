#include "opt/anneal_walk.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tam/partition.hpp"

namespace soctest {
namespace {

// Neighbour move on a partition: wire transfer, bus split, or bus merge.
TamArchitecture random_neighbour(const TamArchitecture& arch, int max_buses,
                                 Rng& rng) {
  TamArchitecture n = arch;
  const int k = n.num_buses();
  const int move = static_cast<int>(rng.next_below(3));
  if (move == 0 && k >= 2) {
    // Move one wire between two distinct buses.
    const int from = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int to = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (to >= from) ++to;
    if (n.widths[static_cast<std::size_t>(from)] > 1) {
      n.widths[static_cast<std::size_t>(from)] -= 1;
      n.widths[static_cast<std::size_t>(to)] += 1;
    }
  } else if (move == 1 && k < max_buses) {
    // Split a bus with width >= 2.
    const int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    const int w = n.widths[static_cast<std::size_t>(b)];
    if (w >= 2) {
      const int left = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(w - 1)));
      n.widths[static_cast<std::size_t>(b)] = left;
      n.widths.push_back(w - left);
    }
  } else if (k >= 2) {
    // Merge two buses.
    const int a = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    int b = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(k - 1)));
    if (b >= a) ++b;
    n.widths[static_cast<std::size_t>(std::min(a, b))] +=
        n.widths[static_cast<std::size_t>(std::max(a, b))];
    n.widths.erase(n.widths.begin() + std::max(a, b));
  }
  return n;
}

bool better(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

}  // namespace

AnnealWalk::AnnealWalk(const SocOptimizer& optimizer,
                       const OptimizerOptions& opts,
                       const AnnealingOptions& anneal, ScheduleMemo* memo,
                       ColumnCache* columns)
    : opt_(&optimizer), opts_(opts), anneal_(anneal), rng_(anneal.seed) {
  kmax_ = std::min({opts_.max_buses, optimizer.soc().num_cores(),
                    opts_.width});
  if (opts_.incremental) ev_.emplace(optimizer, opts_, memo, columns);
  current_ = balanced_partition(opts_.width, std::max(1, kmax_ / 2));
  cur_r_ = evaluate(current_);
  best_ = cur_r_;
  temperature_ =
      anneal_.initial_temperature * static_cast<double>(cur_r_.test_time);
}

OptimizationResult AnnealWalk::evaluate(const TamArchitecture& arch) {
  if (ev_) {
    ev_->prepare({arch});
    // The walk owns its evaluator and drives it from one thread, so the
    // warm-started construction (anchor patching + cached core order) is
    // safe here; results are bit-identical to the cold path.
    return ev_->evaluate_warm(arch);
  }
  ++scratch_stats_.candidates_scheduled;
  return opt_->evaluate(arch, opts_);
}

// One iteration of the original optimize_annealing loop, verbatim — see
// opt/annealing.cpp (pre-portfolio) for the bit-identity argument of the
// bound-rejection path: a prune is taken only when the scratch path's
// acceptance test is certain to reject with the SAME draws, so the RNG
// stream is preserved either way. An invalid candidate (degenerate
// partition) skips cooling, matching the original `continue`.
void AnnealWalk::step() {
  if (done()) return;
  ++it_;

  const TamArchitecture cand = random_neighbour(current_, kmax_, rng_);
  if (cand.num_buses() < 1 || cand.total_width() != opts_.width) return;
  ++proposals_;

  bool accept;
  OptimizationResult r;
  if (ev_) {
    ev_->note_anneal_proposals(1);
    ev_->prepare({cand});
    std::optional<double> drawn_u;
    if (ev_->bound_exceeds(cand, cur_r_.test_time)) {
      // Certainly uphill. The scratch path would reject outright when
      // cold (no draw), or draw u — consume the identical draw here and
      // reject when even the bound's optimistic delta cannot pass.
      if (temperature_ <= 1e-9) {
        ev_->note_anneal_pruned(1);
        temperature_ *= anneal_.cooling;
        return;
      }
      const double u = rng_.next_double();
      // The scratch path accepts iff u < exp(-delta/T), which needs
      // delta < T * (-ln u). Probe the bound once at that limit:
      // bound_exceeds(probe) certifies lb >= probe + 1, a concrete
      // admissible value to replay the scratch exp-test against. The
      // log/floor only PICK the probe point — a badly rounded probe
      // merely forfeits a prune, never flips a decision, because the
      // final test is the same u-vs-exp comparison the scratch path
      // would make with any delta >= probe + 1 - incumbent.
      const double limit = static_cast<double>(cur_r_.test_time) +
                           temperature_ * (-std::log(u));
      if (limit < 9.0e18) {
        const std::int64_t probe =
            static_cast<std::int64_t>(std::floor(limit));
        if (ev_->bound_exceeds(cand, probe)) {
          const double lb_delta =
              static_cast<double>(probe + 1 - cur_r_.test_time);
          if (u >= std::exp(-lb_delta / temperature_)) {
            ev_->note_anneal_pruned(1);
            temperature_ *= anneal_.cooling;
            return;
          }
        }
      }
      drawn_u = u;  // inconclusive: replay the exact test with this u
    }
    r = ev_->evaluate_warm(cand);
    const double delta =
        static_cast<double>(r.test_time - cur_r_.test_time);
    if (drawn_u) {
      accept = *drawn_u < std::exp(-delta / temperature_);
    } else {
      accept = delta <= 0.0 ||
               (temperature_ > 1e-9 &&
                rng_.next_double() < std::exp(-delta / temperature_));
    }
  } else {
    ++scratch_stats_.anneal_proposals;
    r = evaluate(cand);
    const double delta =
        static_cast<double>(r.test_time - cur_r_.test_time);
    accept = delta <= 0.0 ||
             (temperature_ > 1e-9 &&
              rng_.next_double() < std::exp(-delta / temperature_));
  }

  if (accept) {
    current_ = cand;
    cur_r_ = std::move(r);
    if (better(cur_r_, best_)) best_ = cur_r_;
  }
  temperature_ *= anneal_.cooling;
}

void AnnealWalk::exchange(AnnealWalk& a, AnnealWalk& b) {
  std::swap(a.current_, b.current_);
  std::swap(a.cur_r_, b.cur_r_);
  if (better(a.cur_r_, a.best_)) a.best_ = a.cur_r_;
  if (better(b.cur_r_, b.best_)) b.best_ = b.cur_r_;
}

void AnnealWalk::adopt_current(const std::vector<int>& widths) {
  current_.widths = widths;
  cur_r_ = evaluate(current_);
  if (better(cur_r_, best_)) best_ = cur_r_;
}

std::uint64_t AnnealWalk::temperature_bits() const {
  return double_bits(temperature_);
}

void AnnealWalk::set_temperature_bits(std::uint64_t bits) {
  temperature_ = bits_double(bits);
}

AnnealWalkState AnnealWalk::save_state() const {
  AnnealWalkState st;
  st.rng = rng_.state();
  st.iteration = it_;
  st.temperature_bits = double_bits(temperature_);
  st.proposals = proposals_;
  st.current_widths = current_.widths;
  st.best_widths = best_.arch.widths;
  return st;
}

void AnnealWalk::restore_state(const AnnealWalkState& st) {
  rng_.set_state(st.rng);
  it_ = st.iteration;
  temperature_ = bits_double(st.temperature_bits);
  proposals_ = st.proposals;
  current_.widths = st.current_widths;
  cur_r_ = evaluate(current_);
  TamArchitecture b;
  b.widths = st.best_widths;
  best_ = evaluate(b);
}

runtime::SearchStats AnnealWalk::counters() const {
  if (ev_) {
    runtime::SearchStats s = ev_->counters();
    s.anneal_memo_hits = s.schedule_reuse_hits;
    return s;
  }
  return scratch_stats_;
}

}  // namespace soctest
