#include "tam/wiring_cost.hpp"

// WiringMetrics is an aggregate filled in by the optimizer (src/opt); this
// TU anchors the target. Kept separate from opt so reporting code can depend
// on the metric type without pulling in the optimizer.
namespace soctest {}
