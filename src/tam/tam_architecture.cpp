#include "tam/tam_architecture.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace soctest {

int TamArchitecture::total_width() const {
  return std::accumulate(widths.begin(), widths.end(), 0);
}

int TamArchitecture::widest() const {
  return widths.empty() ? 0 : *std::max_element(widths.begin(), widths.end());
}

std::string TamArchitecture::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) s += "+";
    s += std::to_string(widths[i]);
  }
  return s;
}

void TamArchitecture::validate() const {
  if (widths.empty())
    throw std::invalid_argument("TamArchitecture: no buses");
  for (int w : widths)
    if (w < 1) throw std::invalid_argument("TamArchitecture: width < 1");
}

}  // namespace soctest
