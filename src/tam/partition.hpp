// Partition generators for the TAM-width search: balanced starting points,
// single-wire-move neighbourhoods for local search, and full enumeration of
// compositions for the exact small-case optimizer.
#pragma once

#include <vector>

#include "tam/tam_architecture.hpp"

namespace soctest {

/// W split into k buses as evenly as possible (wider buses first).
TamArchitecture balanced_partition(int total_width, int k);

/// All architectures reachable by moving one wire between two buses
/// (keeping every bus >= min_width). No duplicates; input not included.
std::vector<TamArchitecture> wire_move_neighbours(const TamArchitecture& arch,
                                                  int min_width = 1);

/// All partitions (unordered, non-increasing widths) of `total_width` into
/// exactly k buses with each width >= min_width. Used by the exact
/// optimizer; exponential, so callers guard sizes.
std::vector<TamArchitecture> enumerate_partitions(int total_width, int k,
                                                  int min_width = 1);

/// The multi-start hill-climb start set: for each bus count
/// k = 1..min(max_buses, num_cores, total_width) the balanced partition,
/// plus (k >= 2) the one-dominant-bus skew and the geometric taper. Shared
/// by SocOptimizer::optimize and the fixed-bus ArchitectureBackend so both
/// climb from the identical candidate set — the fixed-bus byte-identity
/// differential rests on this being one function, not two copies.
std::vector<TamArchitecture> hill_climb_starts(int total_width, int max_buses,
                                               int num_cores);

}  // namespace soctest
