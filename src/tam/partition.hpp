// Partition generators for the TAM-width search: balanced starting points,
// single-wire-move neighbourhoods for local search, and full enumeration of
// compositions for the exact small-case optimizer.
#pragma once

#include <vector>

#include "tam/tam_architecture.hpp"

namespace soctest {

/// W split into k buses as evenly as possible (wider buses first).
TamArchitecture balanced_partition(int total_width, int k);

/// All architectures reachable by moving one wire between two buses
/// (keeping every bus >= min_width). No duplicates; input not included.
std::vector<TamArchitecture> wire_move_neighbours(const TamArchitecture& arch,
                                                  int min_width = 1);

/// All partitions (unordered, non-increasing widths) of `total_width` into
/// exactly k buses with each width >= min_width. Used by the exact
/// optimizer; exponential, so callers guard sizes.
std::vector<TamArchitecture> enumerate_partitions(int total_width, int k,
                                                  int min_width = 1);

}  // namespace soctest
