#include "tam/partition.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace soctest {

TamArchitecture balanced_partition(int total_width, int k) {
  if (k < 1 || total_width < k)
    throw std::invalid_argument("balanced_partition: need W >= k >= 1");
  TamArchitecture arch;
  const int base = total_width / k;
  const int extra = total_width % k;
  for (int i = 0; i < k; ++i) arch.widths.push_back(base + (i < extra ? 1 : 0));
  return arch;
}

std::vector<TamArchitecture> wire_move_neighbours(const TamArchitecture& arch,
                                                  int min_width) {
  std::set<std::vector<int>> seen;
  std::vector<TamArchitecture> out;
  const int k = arch.num_buses();
  for (int from = 0; from < k; ++from) {
    if (arch.widths[static_cast<std::size_t>(from)] - 1 < min_width) continue;
    for (int to = 0; to < k; ++to) {
      if (to == from) continue;
      TamArchitecture n = arch;
      n.widths[static_cast<std::size_t>(from)] -= 1;
      n.widths[static_cast<std::size_t>(to)] += 1;
      std::vector<int> key = n.widths;
      std::sort(key.begin(), key.end());
      if (seen.insert(std::move(key)).second) out.push_back(std::move(n));
    }
  }
  return out;
}

namespace {
void enumerate_rec(int remaining, int buses_left, int max_part, int min_width,
                   std::vector<int>& current,
                   std::vector<TamArchitecture>& out) {
  if (buses_left == 0) {
    if (remaining == 0) out.push_back(TamArchitecture{current});
    return;
  }
  // Widths are emitted non-increasing; the remaining buses must be able to
  // absorb what is left.
  const int hi = std::min(max_part, remaining - min_width * (buses_left - 1));
  for (int w = hi; w >= min_width; --w) {
    if (static_cast<long long>(w) * buses_left < remaining) break;
    current.push_back(w);
    enumerate_rec(remaining - w, buses_left - 1, w, min_width, current, out);
    current.pop_back();
  }
}
}  // namespace

std::vector<TamArchitecture> hill_climb_starts(int total_width, int max_buses,
                                               int num_cores) {
  // Multi-start hill climbing: the makespan landscape over partitions
  // has plateaus (many cores are width-insensitive past their sweet
  // spot), so a single start can stall in a poor basin.
  std::vector<TamArchitecture> starts;
  const int kmax = std::min({max_buses, num_cores, total_width});
  for (int k = 1; k <= kmax; ++k) {
    starts.push_back(balanced_partition(total_width, k));
    if (k >= 2) {
      // One dominant bus, the rest minimal: good when one long core
      // should monopolize most of the budget.
      TamArchitecture skew;
      skew.widths.assign(static_cast<std::size_t>(k), 1);
      skew.widths[0] = total_width - (k - 1);
      if (skew.widths[0] >= 1) starts.push_back(skew);
      // Geometric taper: wide, half, half of that, ...
      TamArchitecture taper;
      int left = total_width;
      for (int b = 0; b < k - 1; ++b) {
        const int wdt = std::max(1, (left - (k - 1 - b)) / 2 + 1);
        taper.widths.push_back(wdt);
        left -= wdt;
      }
      if (left >= 1) {
        taper.widths.push_back(left);
        starts.push_back(taper);
      }
    }
  }
  return starts;
}

std::vector<TamArchitecture> enumerate_partitions(int total_width, int k,
                                                  int min_width) {
  if (k < 1 || total_width < k * min_width) return {};
  std::vector<TamArchitecture> out;
  std::vector<int> current;
  enumerate_rec(total_width, k, total_width, min_width, current, out);
  return out;
}

}  // namespace soctest
