// On-chip wiring metrics for the three architecture styles of the paper's
// Figure 4. The interesting contrast: with SOC-level (per-TAM) decompression
// the on-chip buses carry *expanded* data and are m-wide (Figure 4b,
// "extremely wide"); with core-level decompression they carry compressed
// data and are only w-wide (Figure 4c), at identical test time.
#pragma once

#include <cstdint>

namespace soctest {

struct WiringMetrics {
  /// Total on-chip TAM wires (sum of bus widths as routed on chip).
  int onchip_wires = 0;
  /// ATE interface width consumed (sum of bus input widths).
  int ate_channels = 0;
  /// Number of decompressors instantiated.
  int decompressors = 0;
  /// Total decompressor flip-flops / gates across instances.
  int total_flip_flops = 0;
  int total_gates = 0;
};

}  // namespace soctest
