// TamArchitecture: a partition of the SOC-level test-access width into k
// fixed-width test buses (the paper's step 3; e.g. W_TAM = 31 -> {12,10,9}).
// Cores assigned to a bus are tested sequentially; buses run concurrently.
#pragma once

#include <string>
#include <vector>

namespace soctest {

struct TamArchitecture {
  /// Bus widths, each >= 1. Order is significant only for reporting.
  std::vector<int> widths;

  int num_buses() const { return static_cast<int>(widths.size()); }
  int total_width() const;
  int widest() const;

  /// "12+10+9" style summary.
  std::string to_string() const;

  void validate() const;  // throws on empty/invalid widths
};

}  // namespace soctest
