// FDR (Frequency-Directed Run-length) coding, after Chandra & Chakrabarty —
// the classic serial test-data compression comparator (see "How Effective
// are Compression Codes for Reducing Test Data Volume?", cited in the
// related work this repository reproduces around). Included as a third
// compression technique for volume comparisons: FDR ships test data over a
// single ATE channel and excels at data-volume reduction on long 0-runs,
// but cannot reduce scan time the way slice-parallel expansion does.
//
// Encoding: the (X -> 0 filled) serial stimulus stream is split into runs
// of 0s, each terminated by a 1. A run of length L belongs to group
// k >= 1 with L in [2^k - 2, 2^(k+1) - 3]; its codeword is a (k-bit,
// unary-terminated) prefix of (k-1) ones and a zero, followed by a k-bit
// binary tail L - (2^k - 2). A trailing run without a terminating 1 is
// encoded the same way; the decoder trims to the announced length.
#pragma once

#include <cstdint>
#include <vector>

#include "dft/test_cube_set.hpp"

namespace soctest {

struct FdrStats {
  std::int64_t input_bits = 0;
  std::int64_t output_bits = 0;
  std::int64_t runs = 0;
  double compression_ratio() const {
    return output_bits == 0
               ? 0.0
               : static_cast<double>(input_bits) /
                     static_cast<double>(output_bits);
  }
};

/// Encodes a binary stream; `stats` (optional) receives counters.
std::vector<bool> fdr_encode(const std::vector<bool>& input,
                             FdrStats* stats = nullptr);

/// Decodes to exactly `output_bits` bits. Throws std::invalid_argument on
/// malformed/truncated input.
std::vector<bool> fdr_decode(const std::vector<bool>& encoded,
                             std::int64_t output_bits);

/// Serializes a core's cubes (canonical cell order, X -> 0) and encodes.
FdrStats fdr_compress_cubes(const TestCubeSet& cubes);

}  // namespace soctest
