#include "fdr/fdr_codec.hpp"

#include <stdexcept>

namespace soctest {
namespace {

/// Group index for run length L: smallest k >= 1 with L <= 2^(k+1) - 3.
int group_of(std::int64_t run_length) {
  int k = 1;
  while (run_length > (std::int64_t{1} << (k + 1)) - 3) ++k;
  return k;
}

void emit_codeword(std::int64_t run_length, std::vector<bool>& out) {
  const int k = group_of(run_length);
  const std::int64_t lo = (std::int64_t{1} << k) - 2;
  // Prefix: (k-1) ones, then a zero.
  for (int i = 0; i < k - 1; ++i) out.push_back(true);
  out.push_back(false);
  // Tail: k bits, MSB first.
  const std::int64_t offset = run_length - lo;
  for (int b = k - 1; b >= 0; --b) out.push_back((offset >> b) & 1);
}

}  // namespace

std::vector<bool> fdr_encode(const std::vector<bool>& input, FdrStats* stats) {
  std::vector<bool> out;
  std::int64_t run = 0, runs = 0;
  for (bool bit : input) {
    if (bit) {
      emit_codeword(run, out);
      ++runs;
      run = 0;
    } else {
      ++run;
    }
  }
  if (run > 0) {
    // Trailing zeros without a terminating 1: encode the full run; the
    // decoder stops at the announced output length before emitting the
    // (nonexistent) terminator.
    emit_codeword(run, out);
    ++runs;
  }
  if (stats) {
    stats->input_bits = static_cast<std::int64_t>(input.size());
    stats->output_bits = static_cast<std::int64_t>(out.size());
    stats->runs = runs;
  }
  return out;
}

std::vector<bool> fdr_decode(const std::vector<bool>& encoded,
                             std::int64_t output_bits) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(output_bits));
  std::size_t i = 0;
  while (static_cast<std::int64_t>(out.size()) < output_bits) {
    // Prefix: count ones until the zero.
    int k = 1;
    while (true) {
      if (i >= encoded.size())
        throw std::invalid_argument("fdr_decode: truncated prefix");
      const bool bit = encoded[i++];
      if (!bit) break;
      ++k;
    }
    // Tail: k bits MSB first.
    std::int64_t offset = 0;
    for (int b = 0; b < k; ++b) {
      if (i >= encoded.size())
        throw std::invalid_argument("fdr_decode: truncated tail");
      offset = (offset << 1) | (encoded[i++] ? 1 : 0);
    }
    const std::int64_t run = ((std::int64_t{1} << k) - 2) + offset;
    for (std::int64_t z = 0;
         z < run && static_cast<std::int64_t>(out.size()) < output_bits; ++z)
      out.push_back(false);
    if (static_cast<std::int64_t>(out.size()) < output_bits)
      out.push_back(true);
  }
  // The final codeword may encode a trailing all-zero run whose synthetic
  // terminator falls exactly at output_bits; out is already sized right.
  return out;
}

FdrStats fdr_compress_cubes(const TestCubeSet& cubes) {
  std::vector<bool> serial;
  serial.reserve(static_cast<std::size_t>(cubes.num_cells()) *
                 static_cast<std::size_t>(cubes.num_patterns()));
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    const TernaryVector cube = cubes.expand(p);
    for (std::size_t i = 0; i < cube.size(); ++i)
      serial.push_back(cube.get(i) == Trit::One);
  }
  FdrStats stats;
  fdr_encode(serial, &stats);
  return stats;
}

}  // namespace soctest
