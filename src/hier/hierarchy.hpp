// Hierarchical SOCs (after Chakrabarty et al., "Test Planning for Modular
// Testing of Hierarchical SOCs", in the reproduced paper's surroundings):
// a child core is embedded inside a parent core and is tested through the
// parent's wrapper in transparent mode. Planning consequence: a core and
// any of its ancestors can never be tested concurrently — the parent's
// wrapper is either testing the parent or routing the child, not both.
#pragma once

#include <vector>

namespace soctest {

struct HierarchySpec {
  /// parent[i] = index of core i's enclosing core, or -1 for top level.
  std::vector<int> parent;

  int num_cores() const { return static_cast<int>(parent.size()); }

  /// Throws std::invalid_argument on bad indices, self-parenting or cycles.
  void validate() const;

  /// Chain of enclosing cores, nearest first.
  std::vector<int> ancestors(int core) const;

  /// True when one core is an ancestor of the other (tests must not
  /// overlap in time).
  bool conflicts(int a, int b) const;

  /// Nesting depth of a core (0 = top level).
  int depth(int core) const;

  /// A flat hierarchy (all top-level) for n cores.
  static HierarchySpec flat(int num_cores);
};

}  // namespace soctest
