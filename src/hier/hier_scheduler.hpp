// Hierarchy-aware test scheduling: the greedy step-4 scheduler extended
// with ancestor/descendant mutual exclusion. A core's test interval may
// not overlap any conflicting core's interval even across buses, so buses
// may idle (gaps) while waiting for a lineage to clear.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/hierarchy.hpp"
#include "sched/schedule.hpp"

namespace soctest {

/// Greedy longest-first scheduling under hierarchy conflicts. The returned
/// schedule validates with allow_gaps = true; conflicting cores never
/// overlap in time.
Schedule hierarchical_schedule(int num_cores, int num_buses,
                               const CostFn& cost,
                               const std::vector<std::int64_t>& ref_time,
                               const HierarchySpec& hierarchy);

/// Checks the mutual-exclusion property; throws std::logic_error.
void validate_hierarchy_exclusion(const Schedule& schedule,
                                  const HierarchySpec& hierarchy);

}  // namespace soctest
