#include "hier/hier_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace soctest {
namespace {

struct Interval {
  std::int64_t start;
  std::int64_t end;
};

/// Earliest t >= lower_bound such that [t, t + dur) avoids every interval.
std::int64_t earliest_fit(std::int64_t lower_bound, std::int64_t dur,
                          std::vector<Interval> blocked) {
  std::sort(blocked.begin(), blocked.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::int64_t t = lower_bound;
  for (const Interval& iv : blocked) {
    if (iv.end <= t) continue;       // already past
    if (iv.start >= t + dur) break;  // gap before this interval fits
    t = iv.end;                      // collide: jump past it
  }
  return t;
}

}  // namespace

Schedule hierarchical_schedule(int num_cores, int num_buses,
                               const CostFn& cost,
                               const std::vector<std::int64_t>& ref_time,
                               const HierarchySpec& hierarchy) {
  if (num_cores < 0 || num_buses < 1)
    throw std::invalid_argument("hierarchical_schedule: bad sizes");
  if (static_cast<int>(ref_time.size()) != num_cores ||
      hierarchy.num_cores() != num_cores)
    throw std::invalid_argument("hierarchical_schedule: size mismatch");
  hierarchy.validate();

  std::vector<int> order(static_cast<std::size_t>(num_cores));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ref_time[static_cast<std::size_t>(a)] >
           ref_time[static_cast<std::size_t>(b)];
  });

  Schedule s;
  s.bus_finish.assign(static_cast<std::size_t>(num_buses), 0);
  std::vector<Interval> placed(static_cast<std::size_t>(num_cores),
                               {0, -1});  // end < start = not placed

  for (int core : order) {
    std::int64_t makespan = 0;
    for (std::int64_t f : s.bus_finish) makespan = std::max(makespan, f);

    // Intervals this core must avoid: every placed conflicting core.
    std::vector<Interval> blocked;
    for (int other = 0; other < num_cores; ++other) {
      if (placed[static_cast<std::size_t>(other)].end <
          placed[static_cast<std::size_t>(other)].start)
        continue;
      if (hierarchy.conflicts(core, other))
        blocked.push_back(placed[static_cast<std::size_t>(other)]);
    }

    int best_bus = -1;
    std::int64_t best_start = 0, best_makespan = 0, best_finish = 0;
    BusAccessCost best_cost;
    for (int b = 0; b < num_buses; ++b) {
      const BusAccessCost c = cost(core, b);
      const std::int64_t start = earliest_fit(
          s.bus_finish[static_cast<std::size_t>(b)], c.time, blocked);
      const std::int64_t finish = start + c.time;
      const std::int64_t new_makespan = std::max(makespan, finish);
      const bool better = best_bus < 0 || new_makespan < best_makespan ||
                          (new_makespan == best_makespan &&
                           finish < best_finish);
      if (better) {
        best_bus = b;
        best_start = start;
        best_makespan = new_makespan;
        best_finish = finish;
        best_cost = c;
      }
    }

    ScheduleEntry e;
    e.core = core;
    e.bus = best_bus;
    e.start = best_start;
    e.end = best_finish;
    e.choice = best_cost.choice;
    s.entries.push_back(e);
    s.bus_finish[static_cast<std::size_t>(best_bus)] = best_finish;
    s.total_volume_bits += best_cost.volume_bits;
    placed[static_cast<std::size_t>(core)] = {best_start, best_finish};
  }

  // Entries were appended in placement order, which is also per-bus start
  // order (each bus only ever appends at or after its cursor).
  return s;
}

void validate_hierarchy_exclusion(const Schedule& schedule,
                                  const HierarchySpec& hierarchy) {
  for (std::size_t i = 0; i < schedule.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.entries.size(); ++j) {
      const ScheduleEntry& a = schedule.entries[i];
      const ScheduleEntry& b = schedule.entries[j];
      if (!hierarchy.conflicts(a.core, b.core)) continue;
      const bool overlap = a.start < b.end && b.start < a.end;
      if (overlap)
        throw std::logic_error(
            "hierarchy violation: cores " + std::to_string(a.core) + " and " +
            std::to_string(b.core) + " overlap");
    }
  }
}

}  // namespace soctest
