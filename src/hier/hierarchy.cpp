#include "hier/hierarchy.hpp"

#include <stdexcept>

namespace soctest {

void HierarchySpec::validate() const {
  const int n = num_cores();
  for (int i = 0; i < n; ++i) {
    const int p = parent[static_cast<std::size_t>(i)];
    if (p < -1 || p >= n)
      throw std::invalid_argument("HierarchySpec: parent index out of range");
    if (p == i) throw std::invalid_argument("HierarchySpec: self-parenting");
  }
  // Cycle check: walk each chain at most n steps.
  for (int i = 0; i < n; ++i) {
    int at = i;
    for (int steps = 0; steps <= n; ++steps) {
      at = parent[static_cast<std::size_t>(at)];
      if (at < 0) break;
      if (at == i)
        throw std::invalid_argument("HierarchySpec: hierarchy cycle");
    }
  }
}

std::vector<int> HierarchySpec::ancestors(int core) const {
  std::vector<int> out;
  int at = parent.at(static_cast<std::size_t>(core));
  while (at >= 0) {
    out.push_back(at);
    at = parent[static_cast<std::size_t>(at)];
  }
  return out;
}

bool HierarchySpec::conflicts(int a, int b) const {
  if (a == b) return false;
  for (int anc : ancestors(a))
    if (anc == b) return true;
  for (int anc : ancestors(b))
    if (anc == a) return true;
  return false;
}

int HierarchySpec::depth(int core) const {
  return static_cast<int>(ancestors(core).size());
}

HierarchySpec HierarchySpec::flat(int num_cores) {
  HierarchySpec h;
  h.parent.assign(static_cast<std::size_t>(num_cores), -1);
  return h;
}

}  // namespace soctest
