#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace soctest::runtime {
namespace {

thread_local ThreadPool* tl_scoped_pool = nullptr;
thread_local ThreadPool* tl_worker_pool = nullptr;
thread_local int tl_worker_index = -1;

std::mutex g_global_m;
std::unique_ptr<ThreadPool> g_global_pool;
int g_global_jobs = 0;  // 0 = not configured, use default_concurrency()

}  // namespace

ThreadPool::ThreadPool(int jobs) {
  const int lanes = std::max(1, jobs);
  queues_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int i = 0; i < lanes - 1; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(queues_.size());
  for (int i = 0; i < static_cast<int>(queues_.size()); ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_main(int idx) {
  // Tasks spawned from this thread (e.g. nested parallel loops) stay on
  // this pool.
  tl_scoped_pool = this;
  tl_worker_pool = this;
  tl_worker_index = idx;
  for (;;) {
    std::function<void()> task;
    if (pop_or_steal(idx, task)) {
      task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_m_);
    sleep_cv_.wait(lk, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

bool ThreadPool::pop_or_steal(int idx, std::function<void()>& task) {
  const int n = static_cast<int>(queues_.size());
  {
    WorkerQueue& own = *queues_[static_cast<std::size_t>(idx)];
    std::lock_guard<std::mutex> lk(own.m);
    if (!own.q.empty()) {
      task = std::move(own.q.back());
      own.q.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (int k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[static_cast<std::size_t>((idx + k) % n)];
    std::lock_guard<std::mutex> lk(victim.m);
    if (!victim.q.empty()) {
      task = std::move(victim.q.front());
      victim.q.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::submit(std::function<void()> task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (queues_.empty()) {  // single-lane pool: run inline
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::size_t idx;
  if (tl_worker_pool == this && tl_worker_index >= 0) {
    // A worker submitting keeps the task local (stolen if others idle).
    idx = static_cast<std::size_t>(tl_worker_index);
  } else {
    idx = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[idx]->m);
    queues_[idx]->q.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Lock pairs with the sleep predicate so a worker between its predicate
    // check and wait() cannot miss this wakeup.
    std::lock_guard<std::mutex> lk(sleep_m_);
  }
  sleep_cv_.notify_one();
}

struct ThreadPool::ChunkState {
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::int64_t total = 0;
  std::int64_t grain = 1;
  const CancelToken* cancel = nullptr;
  std::function<void(std::int64_t, std::int64_t)> body;
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr err;
  std::atomic<bool> failed{false};
  std::atomic<bool> saw_cancel{false};
};

void ThreadPool::drain_chunks(const std::shared_ptr<ChunkState>& st) {
  for (;;) {
    const std::int64_t i0 =
        st->next.fetch_add(st->grain, std::memory_order_relaxed);
    if (i0 >= st->total) return;
    const std::int64_t i1 = std::min(st->total, i0 + st->grain);
    const bool skip = st->failed.load(std::memory_order_relaxed) ||
                      (st->cancel && st->cancel->cancelled());
    if (!skip) {
      try {
        st->body(i0, i1);
      } catch (...) {
        std::lock_guard<std::mutex> lk(st->m);
        if (!st->err) st->err = std::current_exception();
        st->failed.store(true, std::memory_order_relaxed);
      }
    } else if (!st->failed.load(std::memory_order_relaxed)) {
      st->saw_cancel.store(true, std::memory_order_relaxed);
    }
    const std::int64_t finished =
        st->done.fetch_add(i1 - i0, std::memory_order_acq_rel) + (i1 - i0);
    if (finished == st->total) {
      std::lock_guard<std::mutex> lk(st->m);
      st->cv.notify_all();
    }
  }
}

void ThreadPool::run_chunked(
    std::int64_t n, std::int64_t grain, const CancelToken* cancel,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (n <= 0) return;
  if (grain <= 0)
    grain = std::max<std::int64_t>(1, n / (4 * concurrency()));

  if (concurrency() == 1 || n <= grain) {
    if (cancel) cancel->check();
    body(0, n);
    return;
  }

  auto st = std::make_shared<ChunkState>();
  st->total = n;
  st->grain = grain;
  st->cancel = cancel;
  st->body = body;

  const std::int64_t chunks = (n + grain - 1) / grain;
  const int helpers = static_cast<int>(std::min<std::int64_t>(
      static_cast<std::int64_t>(queues_.size()), chunks - 1));
  for (int i = 0; i < helpers; ++i)
    submit([st] { drain_chunks(st); });

  drain_chunks(st);  // the caller is a full lane — never blocks on workers

  {
    std::unique_lock<std::mutex> lk(st->m);
    st->cv.wait(lk, [&] {
      return st->done.load(std::memory_order_acquire) == st->total;
    });
  }
  if (st->err) std::rethrow_exception(st->err);
  if (st->saw_cancel.load(std::memory_order_relaxed)) throw CancelledError();
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.workers = concurrency();
  return s;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_global_m);
  if (!g_global_pool) {
    const int jobs =
        g_global_jobs > 0 ? g_global_jobs : default_concurrency();
    g_global_pool = std::make_unique<ThreadPool>(jobs);
  }
  return *g_global_pool;
}

ThreadPool* current_pool() { return tl_scoped_pool; }

ThreadPool& effective_pool() {
  return tl_scoped_pool ? *tl_scoped_pool : ThreadPool::global();
}

PoolScope::PoolScope(ThreadPool* pool) : prev_(tl_scoped_pool) {
  tl_scoped_pool = pool;
}

PoolScope::~PoolScope() { tl_scoped_pool = prev_; }

int default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw ? static_cast<int>(hw) : 1;
  if (const char* env = std::getenv("SOCTEST_JOBS")) {
    // Strict parse, matching the CLI's --jobs contract: the whole value
    // must be a positive integer — "abc", "4x", "" or "-3" are rejected
    // with a warning, never silently treated as 0 the way atoi would.
    int jobs = 0;
    const char* end = env + std::strlen(env);
    const auto [ptr, ec] = std::from_chars(env, end, jobs);
    if (ec == std::errc() && ptr == end && jobs >= 1) return jobs;
    std::fprintf(stderr,
                 "soctest: ignoring invalid SOCTEST_JOBS='%s' (want a "
                 "positive integer); using %d lanes\n",
                 env, fallback);
  }
  return fallback;
}

void set_global_concurrency(int jobs) {
  std::lock_guard<std::mutex> lk(g_global_m);
  g_global_jobs = std::max(1, jobs);
  g_global_pool.reset();  // next global() builds a pool of the new size
}

}  // namespace soctest::runtime
