// Deterministic parallel loops. The contract: `fn(i)` writes only state
// owned by index i (typically a pre-sized result slot), so the output is a
// pure function of the input — bit-identical for any thread count,
// including 1 — because no reduction order, steal order, or scheduling
// decision ever reaches the results. Exceptions and cancellation surface on
// the calling thread.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace soctest::runtime {

struct ParallelOptions {
  /// Pool to run on; null = the calling thread's scoped pool (PoolScope /
  /// worker thread) or the process-global pool.
  ThreadPool* pool = nullptr;
  /// Indices per chunk; <= 0 picks max(1, n / (4 * lanes)).
  std::int64_t grain = 0;
  /// Optional cooperative cancellation (CancelledError on the caller).
  const CancelToken* cancel = nullptr;
};

/// Runs fn(i) for every i in [begin, end), in parallel, deterministically.
template <class Fn>
void parallel_for(std::int64_t begin, std::int64_t end, Fn&& fn,
                  const ParallelOptions& opts = {}) {
  if (end <= begin) return;
  ThreadPool& pool = opts.pool ? *opts.pool : effective_pool();
  pool.run_chunked(end - begin, opts.grain, opts.cancel,
                   [&fn, begin](std::int64_t i0, std::int64_t i1) {
                     for (std::int64_t i = i0; i < i1; ++i) fn(begin + i);
                   });
}

/// Maps fn over items into an index-aligned result vector. The result type
/// must be default-constructible (slots are pre-sized).
template <class T, class Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn,
                  const ParallelOptions& opts = {})
    -> std::vector<decltype(fn(items[0]))> {
  using R = decltype(fn(items[0]));
  std::vector<R> out(items.size());
  parallel_for(
      0, static_cast<std::int64_t>(items.size()),
      [&](std::int64_t i) {
        out[static_cast<std::size_t>(i)] =
            fn(items[static_cast<std::size_t>(i)]);
      },
      opts);
  return out;
}

}  // namespace soctest::runtime
