#include "runtime/table_cache.hpp"

#include <limits>
#include <utility>

#include "runtime/fnv.hpp"

namespace soctest::runtime {
namespace {

void hash_core(FnvHasher& h, const CoreUnderTest& core) {
  const CoreSpec& s = core.spec;
  h.str(s.name);
  h.i32(s.num_inputs);
  h.i32(s.num_outputs);
  h.ints(s.scan_chain_lengths);
  h.boolean(s.flexible_scan);
  h.i64(s.flexible_scan_cells);
  h.i32(s.num_patterns);
  // Hashed only when non-default so every pre-profile key is unchanged;
  // power feeds scheduling (the memoized results), so a changed scale must
  // change the session key.
  if (s.power_scale != 1.0)
    h.bytes(&s.power_scale, sizeof s.power_scale);

  const TestCubeSet& cubes = core.cubes;
  h.i64(cubes.num_cells());
  h.i32(cubes.num_patterns());
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    const auto& bits = cubes.pattern(p);
    h.u64(bits.size());
    for (const CareBit& b : bits) {
      h.u64(b.cell);
      h.boolean(b.value);
    }
  }
}

void hash_opts(FnvHasher& h, const ExploreOptions& opts) {
  h.i32(opts.max_width);
  h.i32(opts.max_chains);
  // use_cache and cancel are deliberately excluded: they select the code
  // path / how long it runs, not the table content.
}

CacheKey finish(const FnvHasher& h) {
  return {h.digest_a(), h.digest_b(), h.length()};
}

}  // namespace

CacheKey key_of(const CoreUnderTest& core, const ExploreOptions& opts) {
  FnvHasher h;
  h.str("soctest.explore_core.v1");
  hash_core(h, core);
  hash_opts(h, opts);
  return finish(h);
}

CacheKey key_of(const CoreUnderTest& core, const ExploreOptions& opts,
                const DictSelectOptions& dict_opts) {
  FnvHasher h;
  h.str("soctest.explore_core_with_selection.v1");
  hash_core(h, core);
  hash_opts(h, opts);
  h.ints(dict_opts.chain_counts);
  h.ints(dict_opts.entry_counts);
  return finish(h);
}

CacheKey key_of_soc(const SocSpec& soc, const ExploreOptions& opts) {
  FnvHasher h;
  h.str("soctest.soc.v1");
  h.str(soc.name);
  h.i64(soc.approx_gate_count);
  h.i64(soc.approx_latch_count);
  h.i32(soc.num_cores());
  for (const CoreUnderTest& c : soc.cores) hash_core(h, c);
  // Same only-when-present rule for the core hierarchy: a hierarchical
  // session's memo holds exclusion-constrained schedules that another
  // parent vector must never reuse.
  if (!soc.hierarchy_parent.empty()) h.ints(soc.hierarchy_parent);
  hash_opts(h, opts);
  return finish(h);
}

TableCache::TableCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {}

std::shared_ptr<const CoreTable> TableCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lk(m_);
  auto it = buckets_.find(key.hash);
  if (it != buckets_.end()) {
    for (Entry& e : it->second) {
      if (e.key == key) {
        e.last_used = ++tick_;
        ++hits_;
        return e.table;
      }
    }
  }
  ++misses_;
  return nullptr;
}

std::shared_ptr<const CoreTable> TableCache::insert(const CacheKey& key,
                                                    CoreTable table) {
  auto stored = std::make_shared<const CoreTable>(std::move(table));
  std::lock_guard<std::mutex> lk(m_);
  std::vector<Entry>& bucket = buckets_[key.hash];
  for (Entry& e : bucket) {
    if (e.key == key) {  // racing recompute of the same content: keep newest
      e.table = stored;
      e.last_used = ++tick_;
      return stored;
    }
  }
  while (entries_ >= capacity_) evict_lru_locked();
  bucket.push_back({key, stored, ++tick_});
  ++entries_;
  ++insertions_;
  return stored;
}

void TableCache::evict_lru_locked() {
  auto oldest_bucket = buckets_.end();
  std::size_t oldest_idx = 0;
  std::uint64_t oldest_tick = std::numeric_limits<std::uint64_t>::max();
  for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].last_used < oldest_tick) {
        oldest_tick = it->second[i].last_used;
        oldest_bucket = it;
        oldest_idx = i;
      }
    }
  }
  if (oldest_bucket == buckets_.end()) return;
  auto& vec = oldest_bucket->second;
  vec.erase(vec.begin() + static_cast<std::ptrdiff_t>(oldest_idx));
  if (vec.empty()) buckets_.erase(oldest_bucket);
  --entries_;
  ++evictions_;
}

CacheStats TableCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insertions = insertions_;
  s.entries = entries_;
  s.capacity = capacity_;
  return s;
}

void TableCache::clear() {
  std::lock_guard<std::mutex> lk(m_);
  buckets_.clear();
  entries_ = 0;
}

TableCache& TableCache::global() {
  static TableCache* cache = [] {
    auto* c = new TableCache(256);  // leaked: outlives static destructors
    register_cache_stats_provider([c] { return c->stats(); });
    return c;
  }();
  return *cache;
}

}  // namespace soctest::runtime
