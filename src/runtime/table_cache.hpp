// Content-addressed cache of CoreTable results. A CacheKey is a 160-bit
// fingerprint (two independent 64-bit FNV digests + hashed byte count) of
// everything that determines an exploration's output: the core's spec, its
// test cubes, the ExploreOptions band, and — for technique selection — the
// dictionary options. Exploration is deterministic, so equal fingerprints
// of equal inputs mean a hit can substitute for a cold run bit-for-bit.
//
// Entries bucket on the primary digest; the secondary digest and length are
// compared on lookup, so a primary-hash collision degrades to an extra
// entry in the bucket instead of a wrong table. Eviction is LRU at a fixed
// capacity. All operations are thread-safe; hit/miss/eviction counters feed
// runtime::collect_stats().
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dft/soc_spec.hpp"
#include "explore/core_explorer.hpp"
#include "explore/technique_select.hpp"
#include "runtime/stats.hpp"

namespace soctest::runtime {

struct CacheKey {
  std::uint64_t hash = 0;    // primary digest: bucket selector
  std::uint64_t check = 0;   // independent digest: collision detector
  std::uint64_t length = 0;  // bytes fingerprinted

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Fingerprint of a plain explore_core() invocation.
CacheKey key_of(const CoreUnderTest& core, const ExploreOptions& opts);

/// Fingerprint of explore_core_with_selection() (includes dict options).
CacheKey key_of(const CoreUnderTest& core, const ExploreOptions& opts,
                const DictSelectOptions& dict_opts);

/// Content fingerprint of a whole SOC (every core's spec + cubes) and the
/// explore band. One changed care bit anywhere changes the key. This is
/// the base of the server's cross-request SessionCache key — two requests
/// share warm ScheduleMemo/ColumnCache state only when this matches.
CacheKey key_of_soc(const SocSpec& soc, const ExploreOptions& opts);

class TableCache {
 public:
  explicit TableCache(std::size_t capacity = 256);

  /// Shared ownership of the cached table, or null on miss.
  std::shared_ptr<const CoreTable> lookup(const CacheKey& key);

  /// Inserts (or replaces) the table for `key`, evicting the least
  /// recently used entry when at capacity. Returns the stored pointer.
  std::shared_ptr<const CoreTable> insert(const CacheKey& key,
                                          CoreTable table);

  /// lookup(), or compute() + insert() on a miss.
  template <class Fn>
  std::shared_ptr<const CoreTable> get_or_compute(const CacheKey& key,
                                                  Fn&& compute) {
    if (auto hit = lookup(key)) return hit;
    return insert(key, compute());
  }

  CacheStats stats() const;
  void clear();  // drops entries; counters are kept

  /// Process-wide cache used by the explore layer; registers itself as the
  /// stats provider for runtime::collect_stats() on first use.
  static TableCache& global();

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const CoreTable> table;
    std::uint64_t last_used = 0;
  };

  void evict_lru_locked();

  mutable std::mutex m_;
  std::size_t capacity_;
  std::size_t entries_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insertions_ = 0;
  // Primary digest -> entries with that digest (>1 only on collision).
  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
};

}  // namespace soctest::runtime
