// Cooperative cancellation for pool tasks and parallel loops: a token the
// issuer cancels (or arms with a deadline) and workers poll between chunks.
// Cancellation is advisory — a task observes it at its next check, nothing
// is interrupted mid-flight.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace soctest::runtime {

/// Thrown by parallel_for / parallel_map when the loop was abandoned because
/// its CancelToken fired (explicitly or by deadline).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("soctest::runtime: cancelled") {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the token to fire once `timeout` elapses from now.
  void set_deadline_after(Clock::duration timeout) {
    set_deadline(Clock::now() + timeout);
  }
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= d) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Throws CancelledError if the token has fired.
  void check() const {
    if (cancelled()) throw CancelledError();
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      static_cast<std::int64_t>(-0x7fffffffffffffff);
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace soctest::runtime
