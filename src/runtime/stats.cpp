#include "runtime/stats.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>

namespace soctest::runtime {
namespace {

std::mutex g_m;
std::vector<PhaseTime> g_phases;
std::function<CacheStats()> g_cache_provider;

// Search counters are plain atomics: hill climbs flush concurrently.
std::atomic<std::uint64_t> g_search_generated{0};
std::atomic<std::uint64_t> g_search_pruned{0};
std::atomic<std::uint64_t> g_search_scheduled{0};
std::atomic<std::uint64_t> g_search_sched_reuse{0};
std::atomic<std::uint64_t> g_search_reuse{0};
std::atomic<std::uint64_t> g_search_computed{0};
std::atomic<std::uint64_t> g_anneal_proposals{0};
std::atomic<std::uint64_t> g_anneal_memo_hits{0};
std::atomic<std::uint64_t> g_anneal_bound_pruned{0};
std::atomic<std::uint64_t> g_warm_schedule_starts{0};
std::atomic<std::uint64_t> g_portfolio_proposals{0};
std::atomic<std::uint64_t> g_portfolio_swaps_attempted{0};
std::atomic<std::uint64_t> g_portfolio_swaps_accepted{0};
std::atomic<std::uint64_t> g_rect_packs{0};
std::atomic<std::uint64_t> g_rect_memo_hits{0};

}  // namespace

void add_phase_seconds(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lk(g_m);
  for (PhaseTime& p : g_phases) {
    if (p.phase == phase) {
      p.seconds += seconds;
      ++p.count;
      return;
    }
  }
  g_phases.push_back({phase, seconds, 1});
}

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() {
  const auto end = std::chrono::steady_clock::now();
  add_phase_seconds(phase_,
                    std::chrono::duration<double>(end - start_).count());
}

void add_search_counters(const SearchStats& s) {
  g_search_generated.fetch_add(s.candidates_generated,
                               std::memory_order_relaxed);
  g_search_pruned.fetch_add(s.candidates_pruned, std::memory_order_relaxed);
  g_search_scheduled.fetch_add(s.candidates_scheduled,
                               std::memory_order_relaxed);
  g_search_sched_reuse.fetch_add(s.schedule_reuse_hits,
                                 std::memory_order_relaxed);
  g_search_reuse.fetch_add(s.column_reuse_hits, std::memory_order_relaxed);
  g_search_computed.fetch_add(s.columns_computed, std::memory_order_relaxed);
  g_anneal_proposals.fetch_add(s.anneal_proposals, std::memory_order_relaxed);
  g_anneal_memo_hits.fetch_add(s.anneal_memo_hits, std::memory_order_relaxed);
  g_anneal_bound_pruned.fetch_add(s.anneal_bound_pruned,
                                  std::memory_order_relaxed);
  g_warm_schedule_starts.fetch_add(s.warm_schedule_starts,
                                   std::memory_order_relaxed);
  g_portfolio_proposals.fetch_add(s.portfolio_proposals,
                                  std::memory_order_relaxed);
  g_portfolio_swaps_attempted.fetch_add(s.portfolio_swaps_attempted,
                                        std::memory_order_relaxed);
  g_portfolio_swaps_accepted.fetch_add(s.portfolio_swaps_accepted,
                                       std::memory_order_relaxed);
  g_rect_packs.fetch_add(s.rect_packs, std::memory_order_relaxed);
  g_rect_memo_hits.fetch_add(s.rect_memo_hits, std::memory_order_relaxed);
}

void reset_search_counters() {
  g_search_generated.store(0, std::memory_order_relaxed);
  g_search_pruned.store(0, std::memory_order_relaxed);
  g_search_scheduled.store(0, std::memory_order_relaxed);
  g_search_sched_reuse.store(0, std::memory_order_relaxed);
  g_search_reuse.store(0, std::memory_order_relaxed);
  g_search_computed.store(0, std::memory_order_relaxed);
  g_anneal_proposals.store(0, std::memory_order_relaxed);
  g_anneal_memo_hits.store(0, std::memory_order_relaxed);
  g_anneal_bound_pruned.store(0, std::memory_order_relaxed);
  g_warm_schedule_starts.store(0, std::memory_order_relaxed);
  g_portfolio_proposals.store(0, std::memory_order_relaxed);
  g_portfolio_swaps_attempted.store(0, std::memory_order_relaxed);
  g_portfolio_swaps_accepted.store(0, std::memory_order_relaxed);
  g_rect_packs.store(0, std::memory_order_relaxed);
  g_rect_memo_hits.store(0, std::memory_order_relaxed);
}

void register_cache_stats_provider(std::function<CacheStats()> provider) {
  std::lock_guard<std::mutex> lk(g_m);
  g_cache_provider = std::move(provider);
}

RuntimeStats collect_stats() {
  RuntimeStats s;
  s.pool = ThreadPool::global().stats();
  s.search.candidates_generated =
      g_search_generated.load(std::memory_order_relaxed);
  s.search.candidates_pruned = g_search_pruned.load(std::memory_order_relaxed);
  s.search.candidates_scheduled =
      g_search_scheduled.load(std::memory_order_relaxed);
  s.search.schedule_reuse_hits =
      g_search_sched_reuse.load(std::memory_order_relaxed);
  s.search.column_reuse_hits = g_search_reuse.load(std::memory_order_relaxed);
  s.search.columns_computed = g_search_computed.load(std::memory_order_relaxed);
  s.search.anneal_proposals =
      g_anneal_proposals.load(std::memory_order_relaxed);
  s.search.anneal_memo_hits =
      g_anneal_memo_hits.load(std::memory_order_relaxed);
  s.search.anneal_bound_pruned =
      g_anneal_bound_pruned.load(std::memory_order_relaxed);
  s.search.warm_schedule_starts =
      g_warm_schedule_starts.load(std::memory_order_relaxed);
  s.search.portfolio_proposals =
      g_portfolio_proposals.load(std::memory_order_relaxed);
  s.search.portfolio_swaps_attempted =
      g_portfolio_swaps_attempted.load(std::memory_order_relaxed);
  s.search.portfolio_swaps_accepted =
      g_portfolio_swaps_accepted.load(std::memory_order_relaxed);
  s.search.rect_packs = g_rect_packs.load(std::memory_order_relaxed);
  s.search.rect_memo_hits = g_rect_memo_hits.load(std::memory_order_relaxed);
  std::function<CacheStats()> provider;
  {
    std::lock_guard<std::mutex> lk(g_m);
    s.phases = g_phases;
    provider = g_cache_provider;
  }
  if (provider) s.table_cache = provider();
  return s;
}

void reset_phase_times() {
  std::lock_guard<std::mutex> lk(g_m);
  g_phases.clear();
}

std::string stats_to_json(const RuntimeStats& s) {
  std::ostringstream os;
  os << "{\"jobs\": " << s.pool.workers
     << ", \"tasks_submitted\": " << s.pool.submitted
     << ", \"tasks_run\": " << s.pool.tasks_run
     << ", \"steals\": " << s.pool.steals << ", \"table_cache\": {\"hits\": "
     << s.table_cache.hits << ", \"misses\": " << s.table_cache.misses
     << ", \"evictions\": " << s.table_cache.evictions
     << ", \"entries\": " << s.table_cache.entries
     << ", \"capacity\": " << s.table_cache.capacity
     << "}, \"search\": {\"candidates_generated\": "
     << s.search.candidates_generated
     << ", \"candidates_pruned\": " << s.search.candidates_pruned
     << ", \"candidates_scheduled\": " << s.search.candidates_scheduled
     << ", \"schedule_reuse_hits\": " << s.search.schedule_reuse_hits
     << ", \"column_reuse_hits\": " << s.search.column_reuse_hits
     << ", \"columns_computed\": " << s.search.columns_computed
     << ", \"anneal_proposals\": " << s.search.anneal_proposals
     << ", \"anneal_memo_hits\": " << s.search.anneal_memo_hits
     << ", \"anneal_bound_pruned\": " << s.search.anneal_bound_pruned
     << ", \"warm_schedule_starts\": " << s.search.warm_schedule_starts
     << ", \"portfolio_proposals\": " << s.search.portfolio_proposals
     << ", \"portfolio_swaps_attempted\": "
     << s.search.portfolio_swaps_attempted
     << ", \"portfolio_swaps_accepted\": " << s.search.portfolio_swaps_accepted
     << ", \"rect_packs\": " << s.search.rect_packs
     << ", \"rect_memo_hits\": " << s.search.rect_memo_hits
     << "}, \"phases\": {";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    os << (i ? ", " : "") << "\"" << s.phases[i].phase
       << "\": " << s.phases[i].seconds;
  }
  os << "}}";
  return os.str();
}

}  // namespace soctest::runtime
