#include "runtime/stats.hpp"

#include <chrono>
#include <mutex>
#include <sstream>

namespace soctest::runtime {
namespace {

std::mutex g_m;
std::vector<PhaseTime> g_phases;
std::function<CacheStats()> g_cache_provider;

}  // namespace

void add_phase_seconds(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lk(g_m);
  for (PhaseTime& p : g_phases) {
    if (p.phase == phase) {
      p.seconds += seconds;
      ++p.count;
      return;
    }
  }
  g_phases.push_back({phase, seconds, 1});
}

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)), start_(std::chrono::steady_clock::now()) {}

PhaseTimer::~PhaseTimer() {
  const auto end = std::chrono::steady_clock::now();
  add_phase_seconds(phase_,
                    std::chrono::duration<double>(end - start_).count());
}

void register_cache_stats_provider(std::function<CacheStats()> provider) {
  std::lock_guard<std::mutex> lk(g_m);
  g_cache_provider = std::move(provider);
}

RuntimeStats collect_stats() {
  RuntimeStats s;
  s.pool = ThreadPool::global().stats();
  std::function<CacheStats()> provider;
  {
    std::lock_guard<std::mutex> lk(g_m);
    s.phases = g_phases;
    provider = g_cache_provider;
  }
  if (provider) s.table_cache = provider();
  return s;
}

void reset_phase_times() {
  std::lock_guard<std::mutex> lk(g_m);
  g_phases.clear();
}

std::string stats_to_json(const RuntimeStats& s) {
  std::ostringstream os;
  os << "{\"jobs\": " << s.pool.workers
     << ", \"tasks_submitted\": " << s.pool.submitted
     << ", \"tasks_run\": " << s.pool.tasks_run
     << ", \"steals\": " << s.pool.steals << ", \"table_cache\": {\"hits\": "
     << s.table_cache.hits << ", \"misses\": " << s.table_cache.misses
     << ", \"evictions\": " << s.table_cache.evictions
     << ", \"entries\": " << s.table_cache.entries
     << ", \"capacity\": " << s.table_cache.capacity << "}, \"phases\": {";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    os << (i ? ", " : "") << "\"" << s.phases[i].phase
       << "\": " << s.phases[i].seconds;
  }
  os << "}}";
  return os.str();
}

}  // namespace soctest::runtime
