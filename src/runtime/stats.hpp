// Process-wide runtime observability: pool counters, TableCache counters,
// and named phase wall times, snapshotted into one struct and rendered as
// JSON by the reporter. The cache reports through a registered provider so
// this module stays free of explore-layer dependencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace soctest::runtime {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;

  std::uint64_t lookups() const { return hits + misses; }
  /// Hit fraction in [0, 1]; 0 when no lookups happened.
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

struct PhaseTime {
  std::string phase;
  double seconds = 0.0;
  std::uint64_t count = 0;  // timer activations accumulated
};

/// Step-3 architecture-search counters (src/opt). `generated` candidates
/// split into `pruned` (rejected by the makespan lower bound, never
/// scheduled), `schedule_reuse_hits` (identical architecture already
/// evaluated earlier in the climb — neighbourhoods of consecutive steps
/// overlap — so the memoized schedule is returned), and `scheduled` (full
/// greedy + refine evaluation ran); `column_reuse_hits` counts
/// per-(candidate, bus) cost columns served from the delta evaluator's
/// width cache instead of recomputed, and `columns_computed` the ones
/// actually built.
/// The annealing search reports through the same stats channel:
/// `anneal_proposals` counts valid SA proposals, of which
/// `anneal_memo_hits` were served from the shared schedule memo (SA
/// revisits architectures constantly) and `anneal_bound_pruned` were
/// rejected on the lower bound alone — provably rejectable without a full
/// evaluation, with the RNG stream kept identical to the scratch path.
struct SearchStats {
  std::uint64_t candidates_generated = 0;
  std::uint64_t candidates_pruned = 0;
  std::uint64_t candidates_scheduled = 0;
  std::uint64_t schedule_reuse_hits = 0;
  std::uint64_t column_reuse_hits = 0;
  std::uint64_t columns_computed = 0;
  std::uint64_t anneal_proposals = 0;
  std::uint64_t anneal_memo_hits = 0;
  std::uint64_t anneal_bound_pruned = 0;
  /// Warm-started greedy constructions: schedules built by patching the
  /// previous candidate's cost matrix (<= 2 bus widths changed) and reusing
  /// its cached core order instead of rebuilding both from scratch. The
  /// schedule itself is identical either way — this counts saved setup work,
  /// not approximations.
  std::uint64_t warm_schedule_starts = 0;
  /// Replica-exchange portfolio (src/portfolio): proposal slots consumed
  /// (replicas x proposals_per_sweep per sweep) and adjacent-pair exchange
  /// attempts/acceptances. Zero unless a portfolio ran.
  std::uint64_t portfolio_proposals = 0;
  std::uint64_t portfolio_swaps_attempted = 0;
  std::uint64_t portfolio_swaps_accepted = 0;
  /// Rectangle backend (opt/rect_backend): strip packings constructed and
  /// genome-memo hits. Zero unless --backend rect or race ran.
  std::uint64_t rect_packs = 0;
  std::uint64_t rect_memo_hits = 0;
};

struct RuntimeStats {
  PoolStats pool;
  CacheStats table_cache;
  SearchStats search;
  std::vector<PhaseTime> phases;  // ordered by first activation
};

/// Adds `seconds` to the named phase accumulator (thread-safe).
void add_phase_seconds(const std::string& phase, double seconds);

/// Accumulates search counters into the process-wide totals (thread-safe;
/// called by each hill climb as it finishes).
void add_search_counters(const SearchStats& s);

/// Clears the search counter accumulators (tests / repeated experiments).
void reset_search_counters();

/// RAII wall-clock accumulator for one phase ("explore", "search", ...).
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Installs the callback collect_stats() uses for the cache column (the
/// global TableCache registers itself on first use).
void register_cache_stats_provider(std::function<CacheStats()> provider);

/// Snapshot of the global pool, the registered cache, and all phase times.
RuntimeStats collect_stats();

/// Clears phase accumulators (tests / repeated experiments).
void reset_phase_times();

/// Compact JSON object, e.g. {"jobs": 8, "tasks_run": …, "phases": {…}}.
std::string stats_to_json(const RuntimeStats& s);

}  // namespace soctest::runtime
