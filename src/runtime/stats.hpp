// Process-wide runtime observability: pool counters, TableCache counters,
// and named phase wall times, snapshotted into one struct and rendered as
// JSON by the reporter. The cache reports through a registered provider so
// this module stays free of explore-layer dependencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace soctest::runtime {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;

  std::uint64_t lookups() const { return hits + misses; }
  /// Hit fraction in [0, 1]; 0 when no lookups happened.
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

struct PhaseTime {
  std::string phase;
  double seconds = 0.0;
  std::uint64_t count = 0;  // timer activations accumulated
};

struct RuntimeStats {
  PoolStats pool;
  CacheStats table_cache;
  std::vector<PhaseTime> phases;  // ordered by first activation
};

/// Adds `seconds` to the named phase accumulator (thread-safe).
void add_phase_seconds(const std::string& phase, double seconds);

/// RAII wall-clock accumulator for one phase ("explore", "search", ...).
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string phase);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Installs the callback collect_stats() uses for the cache column (the
/// global TableCache registers itself on first use).
void register_cache_stats_provider(std::function<CacheStats()> provider);

/// Snapshot of the global pool, the registered cache, and all phase times.
RuntimeStats collect_stats();

/// Clears phase accumulators (tests / repeated experiments).
void reset_phase_times();

/// Compact JSON object, e.g. {"jobs": 8, "tasks_run": …, "phases": {…}}.
std::string stats_to_json(const RuntimeStats& s);

}  // namespace soctest::runtime
