// Work-stealing thread pool. Each worker owns a deque: it pops its own work
// LIFO and steals FIFO from siblings, so large subtasks migrate to idle
// workers while hot caches keep recent work local. A pool built with
// `jobs = N` uses the submitting thread as one of the N lanes during
// blocking parallel loops (parallel_for.hpp), so jobs=1 means strictly
// serial inline execution — the reference for determinism tests.
//
// The process-wide pool (`ThreadPool::global()`) is sized from
// SOCTEST_JOBS, or hardware_concurrency when unset; `set_global_concurrency`
// (the CLI's --jobs flag) overrides both. `PoolScope` redirects the
// calling thread — and, transitively, every task it spawns — to a specific
// pool instance; worker threads are permanently scoped to their own pool so
// nested parallel loops never hop pools.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/cancellation.hpp"

namespace soctest::runtime {

struct PoolStats {
  std::uint64_t submitted = 0;  // tasks handed to submit()/async()
  std::uint64_t tasks_run = 0;  // tasks executed (inline or on a worker)
  std::uint64_t steals = 0;     // tasks taken from another worker's deque
  int workers = 0;              // concurrency (worker threads + caller lane)
};

class ThreadPool {
 public:
  /// `jobs` is the total concurrency: jobs-1 worker threads are spawned and
  /// the caller contributes the last lane inside blocking parallel loops.
  explicit ThreadPool(int jobs);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int concurrency() const { return static_cast<int>(queues_.size()) + 1; }

  /// Fire-and-forget. With concurrency()==1 the task runs inline.
  void submit(std::function<void()> task);

  /// submit() with a future for the result (exceptions propagate).
  template <class F>
  auto async(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Deterministic chunked loop engine (used by parallel_for): splits
  /// [0, n) into `grain`-sized chunks claimed from a shared counter by the
  /// calling thread plus up to concurrency()-1 pool tasks, and blocks until
  /// every index ran. body(i0, i1) half-open. grain <= 0 picks
  /// max(1, n / (4 * concurrency)). Rethrows the first chunk exception;
  /// throws CancelledError if `cancel` fired before completion. Safe to
  /// nest: the caller drains the chunk counter itself, so progress never
  /// depends on a free worker.
  void run_chunked(std::int64_t n, std::int64_t grain,
                   const CancelToken* cancel,
                   const std::function<void(std::int64_t, std::int64_t)>& body);

  PoolStats stats() const;

  /// Process-wide pool (lazily built; see header comment for sizing).
  static ThreadPool& global();

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };
  struct ChunkState;

  void worker_main(int idx);
  bool pop_or_steal(int idx, std::function<void()>& task);
  static void drain_chunks(const std::shared_ptr<ChunkState>& st);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  bool stop_ = false;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};
};

/// Pool the calling thread is scoped to (PoolScope or worker thread), or
/// null when unscoped.
ThreadPool* current_pool();

/// current_pool() if scoped, else ThreadPool::global().
ThreadPool& effective_pool();

/// Scopes the calling thread to `pool` (null restores the global default)
/// for the lifetime of the object. Used by tests and benchmarks to run the
/// same code under different concurrency without touching the global pool.
class PoolScope {
 public:
  explicit PoolScope(ThreadPool* pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* prev_;
};

/// SOCTEST_JOBS env var if it parses strictly as a positive integer, else
/// hardware_concurrency, else 1. A set-but-malformed value ("abc", "4x",
/// "-3") is rejected with a warning on stderr, never silently coerced.
int default_concurrency();

/// Replaces the global pool with one of `jobs` lanes (clamped to >= 1).
/// Call while no parallel work is in flight (startup / between phases).
void set_global_concurrency(int jobs);

}  // namespace soctest::runtime
