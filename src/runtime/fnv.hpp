// Streaming FNV hashing used for content-addressed cache keys. Two
// independent 64-bit digests (FNV-1a and FNV-1, distinct offset bases) plus
// the byte count form a 160-bit fingerprint, so a single-hash collision is
// detected instead of silently returning the wrong cached value.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace soctest::runtime {

class FnvHasher {
 public:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  static constexpr std::uint64_t kBasisA = 14695981039346656037ULL;  // FNV-1a
  // Independent second stream: same prime, decorrelated basis, FNV-1 order.
  static constexpr std::uint64_t kBasisB = 0x9ae16a3b2f90404fULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * kPrime;  // FNV-1a: xor, then multiply
      b_ = (b_ * kPrime) ^ p[i];  // FNV-1: multiply, then xor
    }
    len_ += n;
  }

  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  template <class T>
  void ints(const std::vector<T>& v) {
    u64(v.size());
    for (const T& x : v) i64(static_cast<std::int64_t>(x));
  }

  std::uint64_t digest_a() const { return a_; }
  std::uint64_t digest_b() const { return b_; }
  std::uint64_t length() const { return len_; }

 private:
  std::uint64_t a_ = kBasisA;
  std::uint64_t b_ = kBasisB;
  std::uint64_t len_ = 0;
};

}  // namespace soctest::runtime
