#include "decomp/decompressor_model.hpp"

#include <stdexcept>

namespace soctest {

DecompressorModel::DecompressorModel(const CodecParams& params)
    : p_(params), slice_reg_(static_cast<std::size_t>(params.m), false) {}

void DecompressorModel::emit() {
  emitted_.push_back(slice_reg_);
  state_ = State::ExpectHead;
}

void DecompressorModel::clock(std::uint32_t tam_word) {
  ++cycles_;
  const Codeword cw = unpack(tam_word, p_);
  switch (state_) {
    case State::ExpectHead: {
      if (cw.opcode != Opcode::Head)
        throw std::invalid_argument("decompressor: expected HEAD");
      target_ = cw.operand & 1u;
      const int count = static_cast<int>(cw.operand >> 1);
      escape_ = count == p_.escape_count();
      remaining_ = escape_ ? -1 : count;
      slice_reg_.assign(static_cast<std::size_t>(p_.m), !target_);
      if (remaining_ == 0)
        emit();
      else
        state_ = State::InSlice;
      break;
    }
    case State::InSlice:
      switch (cw.opcode) {
        case Opcode::Single:
          if (cw.operand == static_cast<std::uint32_t>(p_.m)) {
            if (!escape_)
              throw std::invalid_argument(
                  "decompressor: END outside escape mode");
            emit();
          } else if (cw.operand < static_cast<std::uint32_t>(p_.m)) {
            slice_reg_[cw.operand] = target_;
            if (remaining_ > 0 && --remaining_ == 0) emit();
          } else {
            throw std::invalid_argument("decompressor: bad SINGLE index");
          }
          break;
        case Opcode::Group:
          if (cw.operand % static_cast<std::uint32_t>(p_.k) != 0 ||
              cw.operand >= static_cast<std::uint32_t>(p_.m))
            throw std::invalid_argument("decompressor: bad GROUP base");
          if (remaining_ == 1)
            throw std::invalid_argument(
                "decompressor: GROUP truncated by HEAD count");
          group_base_ = static_cast<int>(cw.operand);
          state_ = State::ExpectData;
          break;
        default:
          throw std::invalid_argument("decompressor: bad opcode in slice");
      }
      break;
    case State::ExpectData: {
      if (cw.opcode != Opcode::Data)
        throw std::invalid_argument("decompressor: expected DATA");
      const int g = group_base_ / p_.k;
      for (int b = 0; b < p_.group_size(g); ++b)
        slice_reg_[static_cast<std::size_t>(group_base_ + b)] =
            (cw.operand >> b) & 1u;
      state_ = State::InSlice;
      if (remaining_ > 0) {
        remaining_ -= 2;
        if (remaining_ == 0) emit();
      }
      break;
    }
  }
}

std::vector<std::vector<bool>> DecompressorModel::run(
    const std::vector<Codeword>& words) {
  state_ = State::ExpectHead;
  emitted_.clear();
  cycles_ = 0;
  for (const Codeword& cw : words) clock(pack(cw, p_));
  if (!idle())
    throw std::invalid_argument("decompressor: stream ended mid-slice");
  return emitted_;
}

}  // namespace soctest
