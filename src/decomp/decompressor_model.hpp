// DecompressorModel: a cycle-accurate behavioural model of the on-chip
// selective-encoding decompressor that sits between the TAM and a core's
// wrapper (paper Figure 1).
//
// Per ATE clock cycle the model consumes one packed w-bit word from the TAM
// and updates a small FSM:
//
//   ExpectHead -> (Head)   latch target symbol and body count, clear the
//                          slice register to fill; count 0 -> emit slice,
//                          stay in ExpectHead; else -> InSlice. The escape
//                          count selects END-terminated mode instead.
//   InSlice    -> (Single idx<m)  set slice bit, decrement count
//              -> (Single idx==m) END (escape mode): emit -> ExpectHead
//              -> (Group)         latch group base -> ExpectData
//   ExpectData -> (Data)          copy literal into group, decrement count
//                                 by two -> InSlice
//   count reaching zero emits the slice and returns to ExpectHead.
//
// Emitted slices are shifted into the m wrapper chains (one shift per
// emission). The model asserts stream well-formedness exactly like
// StreamDecoder, and its cycle count equals the number of codewords -- the
// identity the compressed-time model relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/codeword.hpp"

namespace soctest {

class DecompressorModel {
 public:
  explicit DecompressorModel(const CodecParams& params);

  /// Feeds one packed w-bit TAM word; advances one clock cycle.
  void clock(std::uint32_t tam_word);

  /// True when the FSM is between slices (safe to stop the stream).
  bool idle() const { return state_ == State::ExpectHead; }

  std::int64_t cycles() const { return cycles_; }
  std::int64_t slices_emitted() const {
    return static_cast<std::int64_t>(emitted_.size());
  }
  const std::vector<std::vector<bool>>& emitted_slices() const {
    return emitted_;
  }

  /// Runs a whole stream from reset; returns the emitted slice sequence.
  std::vector<std::vector<bool>> run(const std::vector<Codeword>& words);

 private:
  enum class State { ExpectHead, InSlice, ExpectData };

  void emit();

  CodecParams p_;
  State state_ = State::ExpectHead;
  bool target_ = false;
  bool escape_ = false;
  int remaining_ = 0;  // body codewords left; -1 in escape mode
  int group_base_ = 0;
  std::vector<bool> slice_reg_;
  std::vector<std::vector<bool>> emitted_;
  std::int64_t cycles_ = 0;
};

}  // namespace soctest
