#include "decomp/compactor.hpp"

#include <cmath>
#include <stdexcept>

#include "bitvec/bit_util.hpp"

namespace soctest {

int CompactorSpec::fan_in() const {
  return static_cast<int>(ceil_div(inputs, outputs));
}

int CompactorSpec::xor_gates() const {
  // Each output's XOR tree over f inputs needs f-1 XOR2 gates; totals to
  // m - q over the forest.
  return inputs - outputs;
}

int CompactorSpec::mask_cells() const { return inputs; }

void CompactorSpec::validate() const {
  if (inputs < 1 || outputs < 1)
    throw std::invalid_argument("CompactorSpec: non-positive sizes");
  if (outputs >= inputs)
    throw std::invalid_argument("CompactorSpec: needs q < m");
}

double x_block_probability(const CompactorSpec& spec, double x_density) {
  spec.validate();
  if (x_density < 0.0 || x_density > 1.0)
    throw std::invalid_argument("x_block_probability: bad density");
  return 1.0 - std::pow(1.0 - x_density, spec.fan_in());
}

double observed_fraction(const CompactorSpec& spec, double x_density,
                         bool with_masking, double mask_efficiency) {
  const double blocked = x_block_probability(spec, x_density);
  if (!with_masking) return 1.0 - blocked;
  if (mask_efficiency < 0.0 || mask_efficiency > 1.0)
    throw std::invalid_argument("observed_fraction: bad mask efficiency");
  return 1.0 - blocked * (1.0 - mask_efficiency);
}

}  // namespace soctest
