// Decompressor hardware-cost model.
//
// The paper (Section 3, step 2) reports for the selective-encoding
// decompressor: a synthesized controller of 5 flip-flops and 23
// combinational gates, plus w/m-dependent datapath logic; one synthesized
// instance contained 69 gates and 1035 flip-flops, amounting to ~1% area on
// million-gate designs. This parametric model is calibrated to those
// anchors: the flip-flop count is dominated by the m-bit slice register and
// the gate count by the operand decoder and group-copy steering.
#pragma once

#include <cstdint>

#include "codec/codeword.hpp"

namespace soctest {

struct DecompressorArea {
  int flip_flops = 0;
  int gates = 0;
};

/// Area of one decompressor with the given geometry.
DecompressorArea decompressor_area(const CodecParams& params);

/// Area overhead of `num_decompressors` instances relative to a design of
/// `design_gates` gates (flip-flops weighted as gate-equivalents of 4).
double area_overhead_fraction(const DecompressorArea& per_instance,
                              int num_decompressors,
                              std::int64_t design_gates);

}  // namespace soctest
