#include "decomp/area_model.hpp"

namespace soctest {

DecompressorArea decompressor_area(const CodecParams& params) {
  DecompressorArea a;
  // Controller: 5 FFs + 23 gates (paper's synthesis result).
  // Datapath FFs: m-bit slice register, w-bit input register, k-bit group
  // base latch, 1 target-symbol latch.
  a.flip_flops = 5 + params.m + params.w + params.k + 1;
  // Datapath gates: operand decoder (~k per decoded control), group steering
  // (one mux-enable per group), set/fill logic amortized over the slice
  // register (~m/8 gate-equivalents of fan-out buffering).
  a.gates = 23 + 4 * params.k + params.num_groups() + params.m / 8;
  return a;
}

double area_overhead_fraction(const DecompressorArea& per_instance,
                              int num_decompressors,
                              std::int64_t design_gates) {
  if (design_gates <= 0) return 0.0;
  const double ge =
      static_cast<double>(per_instance.gates) + 4.0 * per_instance.flip_flops;
  return ge * num_decompressors / static_cast<double>(design_gates);
}

}  // namespace soctest
