// Space-compactor model for the response side (the "Compactor (optional)"
// box of the paper's Figure 1). Responses themselves are outside the
// planning problem (paper, Section 1), so this models the *structure*: an
// XOR tree compacting m wrapper-chain outputs into q pins, its hardware
// cost, and the classic X-blocking analysis — an unknown (X) response bit
// corrupts its XOR output, which X-masking cells mitigate.
#pragma once

#include <cstdint>

namespace soctest {

struct CompactorSpec {
  int inputs = 0;   // m wrapper-chain outputs
  int outputs = 0;  // q compacted pins (q < m)

  /// Chains feeding one output (ceil(m/q)).
  int fan_in() const;
  /// XOR2 gates of the forest.
  int xor_gates() const;
  /// Mask flip-flops when per-chain X-masking is added.
  int mask_cells() const;

  void validate() const;  // throws on q >= m or non-positive sizes
};

/// Probability that a given compactor output is corrupted in one cycle,
/// when each chain bit is X independently with probability x_density:
///   1 - (1 - x)^fan_in.
double x_block_probability(const CompactorSpec& spec, double x_density);

/// Expected fraction of response bits observed (not X-blocked) over a
/// test, with and without masking. With per-chain masking an output is
/// observed unless *all* its unmasked inputs are X... modeled as: masking
/// recovers a fraction `mask_efficiency` of otherwise-blocked cycles.
double observed_fraction(const CompactorSpec& spec, double x_density,
                         bool with_masking, double mask_efficiency = 0.9);

}  // namespace soctest
