// TestCubeSet: the (typically very sparse) set of test cubes for one core.
//
// A test cube assigns 0/1 to a small fraction of the core's stimulus cells
// (care bits) and leaves the rest as X. Industrial cores have care-bit
// densities of 1-5% (paper, Section 4), so cubes are stored sparsely: per
// pattern, a sorted vector of (cell, value) pairs. Cell indices follow the
// canonical stimulus order:
//
//   [0, num_inputs)                      wrapper input cells
//   [num_inputs, num_inputs + S)         scan cells, chain by chain, in scan
//                                        order (cell shifted in first = the
//                                        deepest cell = lowest index within
//                                        its chain)
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/ternary_vector.hpp"

namespace soctest {

struct CareBit {
  std::uint32_t cell = 0;
  bool value = false;

  friend bool operator==(const CareBit&, const CareBit&) = default;
};

class TestCubeSet {
 public:
  TestCubeSet() = default;
  explicit TestCubeSet(std::int64_t num_cells) : num_cells_(num_cells) {}

  std::int64_t num_cells() const { return num_cells_; }
  int num_patterns() const { return static_cast<int>(patterns_.size()); }

  /// Appends a pattern; care bits need not be sorted (they will be).
  /// Throws std::invalid_argument on out-of-range cells or duplicates.
  void add_pattern(std::vector<CareBit> care_bits);

  /// Appends a pattern given as a full ternary vector of length num_cells().
  void add_pattern(const TernaryVector& cube);

  const std::vector<CareBit>& pattern(int p) const { return patterns_.at(p); }

  /// Expands pattern p to a full ternary vector (X where unspecified).
  TernaryVector expand(int p) const;

  std::int64_t total_care_bits() const;
  /// Care bits / (cells * patterns); 0 for empty sets.
  double care_bit_density() const;
  /// Fraction of care bits that are 1.
  double one_fraction() const;

 private:
  std::int64_t num_cells_ = 0;
  std::vector<std::vector<CareBit>> patterns_;
};

}  // namespace soctest
