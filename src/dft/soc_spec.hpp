// SocSpec: a system-on-chip as seen by the test planner — a named set of
// wrapped cores, each with its structural description and its test cubes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dft/core_spec.hpp"
#include "dft/test_cube_set.hpp"

namespace soctest {

struct CoreUnderTest {
  CoreSpec spec;
  TestCubeSet cubes;

  /// Consistency between spec and cubes (cell count, pattern count).
  void validate() const;
};

struct SocSpec {
  std::string name;
  std::vector<CoreUnderTest> cores;

  /// Optional core hierarchy: hierarchy_parent[i] = index of core i's
  /// enclosing core, or -1 for top level. Empty = flat (every core top
  /// level). Hierarchical scheduling scenarios (src/scenario) forbid a
  /// core from testing concurrently with any ancestor/descendant; the
  /// default scenario ignores the field entirely. Serialized by io/soc_text
  /// only when non-empty, so flat SOCs round-trip byte-identically.
  std::vector<int> hierarchy_parent;

  int num_cores() const { return static_cast<int>(cores.size()); }

  /// Sum of the cores' uncompressed stimulus volumes, in bits. This is the
  /// "initial given test data volume V_i" of the paper's Table 3.
  std::int64_t initial_data_volume_bits() const;

  /// Approximate logic size, used only for reporting (Table 3 column 2).
  std::int64_t approx_gate_count = 0;
  std::int64_t approx_latch_count = 0;

  void validate() const;
};

}  // namespace soctest
