#include "dft/core_spec.hpp"

#include <numeric>
#include <stdexcept>

namespace soctest {

std::int64_t CoreSpec::total_scan_cells() const {
  if (flexible_scan) return flexible_scan_cells;
  return std::accumulate(scan_chain_lengths.begin(), scan_chain_lengths.end(),
                         std::int64_t{0});
}

std::int64_t CoreSpec::stimulus_bits_per_pattern() const {
  return num_inputs + total_scan_cells();
}

std::int64_t CoreSpec::initial_data_volume_bits() const {
  return stimulus_bits_per_pattern() * num_patterns;
}

int CoreSpec::max_wrapper_chains() const {
  std::int64_t bound;
  if (flexible_scan) {
    bound = flexible_scan_cells + num_inputs;
  } else {
    bound = static_cast<std::int64_t>(scan_chain_lengths.size()) + num_inputs;
  }
  if (bound < 1) bound = 1;  // combinational core: one chain of input cells
  return static_cast<int>(std::min<std::int64_t>(bound, 1 << 16));
}

void CoreSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("CoreSpec: empty name");
  if (num_inputs < 0 || num_outputs < 0 || num_patterns < 0)
    throw std::invalid_argument("CoreSpec: negative count");
  if (flexible_scan) {
    if (flexible_scan_cells < 0)
      throw std::invalid_argument("CoreSpec: negative flexible cell count");
    if (!scan_chain_lengths.empty())
      throw std::invalid_argument(
          "CoreSpec: flexible core must not list fixed chains");
  } else {
    for (int len : scan_chain_lengths)
      if (len <= 0)
        throw std::invalid_argument("CoreSpec: non-positive chain length");
  }
  if (stimulus_bits_per_pattern() == 0 && num_patterns > 0)
    throw std::invalid_argument("CoreSpec: patterns but no stimulus cells");
  if (!(power_scale > 0.0))
    throw std::invalid_argument("CoreSpec: power scale must be positive");
}

}  // namespace soctest
