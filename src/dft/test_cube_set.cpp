#include "dft/test_cube_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace soctest {

void TestCubeSet::add_pattern(std::vector<CareBit> care_bits) {
  std::sort(care_bits.begin(), care_bits.end(),
            [](const CareBit& a, const CareBit& b) { return a.cell < b.cell; });
  for (std::size_t i = 0; i < care_bits.size(); ++i) {
    if (care_bits[i].cell >= static_cast<std::uint64_t>(num_cells_))
      throw std::invalid_argument("TestCubeSet: care bit out of range");
    if (i > 0 && care_bits[i].cell == care_bits[i - 1].cell)
      throw std::invalid_argument("TestCubeSet: duplicate care bit");
  }
  patterns_.push_back(std::move(care_bits));
}

void TestCubeSet::add_pattern(const TernaryVector& cube) {
  if (static_cast<std::int64_t>(cube.size()) != num_cells_)
    throw std::invalid_argument("TestCubeSet: cube size mismatch");
  std::vector<CareBit> bits;
  for (std::size_t i = 0; i < cube.size(); ++i) {
    const Trit t = cube.get(i);
    if (t != Trit::X)
      bits.push_back({static_cast<std::uint32_t>(i), t == Trit::One});
  }
  patterns_.push_back(std::move(bits));
}

TernaryVector TestCubeSet::expand(int p) const {
  TernaryVector v(static_cast<std::size_t>(num_cells_));
  for (const CareBit& b : patterns_.at(p))
    v.set(b.cell, b.value ? Trit::One : Trit::Zero);
  return v;
}

std::int64_t TestCubeSet::total_care_bits() const {
  std::int64_t n = 0;
  for (const auto& p : patterns_) n += static_cast<std::int64_t>(p.size());
  return n;
}

double TestCubeSet::care_bit_density() const {
  const std::int64_t denom = num_cells_ * num_patterns();
  if (denom == 0) return 0.0;
  return static_cast<double>(total_care_bits()) / static_cast<double>(denom);
}

double TestCubeSet::one_fraction() const {
  std::int64_t care = 0, ones = 0;
  for (const auto& p : patterns_)
    for (const CareBit& b : p) {
      ++care;
      ones += b.value ? 1 : 0;
    }
  return care == 0 ? 0.0 : static_cast<double>(ones) / static_cast<double>(care);
}

}  // namespace soctest
