// CoreSpec: the structural description of one wrapped core, as consumed by
// wrapper design, compression and test planning. Mirrors the information the
// ITC'02 SOC benchmark format provides per module.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soctest {

struct CoreSpec {
  std::string name;

  /// Functional terminals; each becomes one wrapper input/output cell.
  int num_inputs = 0;
  int num_outputs = 0;

  /// Internal scan-chain lengths (fixed-scan cores, e.g. ISCAS).
  std::vector<int> scan_chain_lengths;

  /// Industrial cores whose scan cells can be re-stitched into any number of
  /// balanced chains (the usual assumption for cores with embedded
  /// compression). When true, `flexible_scan_cells` holds the cell count and
  /// `scan_chain_lengths` is ignored.
  bool flexible_scan = false;
  std::int64_t flexible_scan_cells = 0;

  int num_patterns = 0;

  /// Per-core multiplier on the test-power model (power/power_model.hpp):
  /// 1.0 = the model's nominal core. Synthetic power profiles and .soc
  /// files use it to make cores' power draw heterogeneous beyond what
  /// scan-cell count alone implies. Serialized only when != 1.0.
  double power_scale = 1.0;

  std::int64_t total_scan_cells() const;

  /// Stimulus bits per pattern = wrapper input cells + scan cells. Test
  /// responses are compacted on-chip and are outside the planning problem
  /// (paper, Section 1).
  std::int64_t stimulus_bits_per_pattern() const;

  /// Uncompressed stimulus volume for the whole pattern set, in bits.
  std::int64_t initial_data_volume_bits() const;

  /// Upper bound on useful wrapper-chain count: one chain per scannable
  /// element group. Fixed-scan cores cannot split a scan chain, so the bound
  /// is #chains + #input cells; flexible cores are bounded by cell count.
  int max_wrapper_chains() const;

  /// Validates invariants (non-negative sizes, flexible/fixed consistency).
  /// Throws std::invalid_argument on violation.
  void validate() const;
};

}  // namespace soctest
