#include "dft/soc_spec.hpp"

#include <stdexcept>

namespace soctest {

void CoreUnderTest::validate() const {
  spec.validate();
  if (cubes.num_cells() != spec.stimulus_bits_per_pattern())
    throw std::invalid_argument("CoreUnderTest: cube cell count mismatch for " +
                                spec.name);
  if (cubes.num_patterns() != spec.num_patterns)
    throw std::invalid_argument("CoreUnderTest: pattern count mismatch for " +
                                spec.name);
}

std::int64_t SocSpec::initial_data_volume_bits() const {
  std::int64_t v = 0;
  for (const auto& c : cores) v += c.spec.initial_data_volume_bits();
  return v;
}

void SocSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("SocSpec: empty name");
  if (cores.empty()) throw std::invalid_argument("SocSpec: no cores");
  for (const auto& c : cores) c.validate();
}

}  // namespace soctest
