#include "dft/soc_spec.hpp"

#include <stdexcept>
#include <string>

namespace soctest {

void CoreUnderTest::validate() const {
  spec.validate();
  if (cubes.num_cells() != spec.stimulus_bits_per_pattern())
    throw std::invalid_argument("CoreUnderTest: cube cell count mismatch for " +
                                spec.name);
  if (cubes.num_patterns() != spec.num_patterns)
    throw std::invalid_argument("CoreUnderTest: pattern count mismatch for " +
                                spec.name);
}

std::int64_t SocSpec::initial_data_volume_bits() const {
  std::int64_t v = 0;
  for (const auto& c : cores) v += c.spec.initial_data_volume_bits();
  return v;
}

void SocSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("SocSpec: empty name");
  if (cores.empty()) throw std::invalid_argument("SocSpec: no cores");
  for (const auto& c : cores) c.validate();
  if (!hierarchy_parent.empty()) {
    // Structural checks only; cycle detection lives in HierarchySpec
    // (hier/), which every hierarchical consumer validates through.
    if (hierarchy_parent.size() != cores.size())
      throw std::invalid_argument("SocSpec: hierarchy size mismatch");
    for (std::size_t i = 0; i < hierarchy_parent.size(); ++i) {
      const int p = hierarchy_parent[i];
      if (p < -1 || p >= static_cast<int>(cores.size()) ||
          p == static_cast<int>(i))
        throw std::invalid_argument("SocSpec: bad hierarchy parent at core " +
                                    std::to_string(i));
    }
  }
}

}  // namespace soctest
