#include "dict/dict_codec.hpp"

#include <stdexcept>

#include "bitvec/bit_util.hpp"

namespace soctest {

DictParams DictParams::make(int m, int entries) {
  if (m < 1) throw std::invalid_argument("DictParams: m < 1");
  if (entries < 2 || (entries & (entries - 1)) != 0)
    throw std::invalid_argument("DictParams: entries must be a power of two");
  DictParams p;
  p.m = m;
  p.entries = entries;
  return p;
}

int DictParams::index_bits() const { return ceil_log2(entries); }
int DictParams::codeword_width() const { return 1 + index_bits(); }
int DictParams::literal_cycles() const {
  return static_cast<int>(ceil_div(1 + m, codeword_width()));
}

std::vector<bool> Dictionary::ram_entry(int e) const {
  const TernaryVector& proto = prototypes.at(static_cast<std::size_t>(e));
  std::vector<bool> bits(proto.size(), false);
  for (std::size_t i = 0; i < proto.size(); ++i)
    bits[i] = proto.get(i) == Trit::One;
  return bits;
}

namespace {

/// Finds a compatible prototype (first fit) or -1. Used while building:
/// compatible slices can still be merged in.
int find_compatible(const Dictionary& dict, const TernaryVector& slice) {
  for (std::size_t e = 0; e < dict.prototypes.size(); ++e)
    if (dict.prototypes[e].compatible_with(slice)) return static_cast<int>(e);
  return -1;
}

/// Finds a prototype that COVERS the slice (every care bit specified with
/// the same value) or -1. Required at encode time: the RAM ships the
/// prototype's bits, so mere compatibility is not enough — an uncovered
/// care bit would be driven by the prototype's 0-fill.
int find_covering(const Dictionary& dict, const TernaryVector& slice) {
  for (std::size_t e = 0; e < dict.prototypes.size(); ++e)
    if (slice.covered_by(dict.prototypes[e])) return static_cast<int>(e);
  return -1;
}

}  // namespace

Dictionary build_dictionary(const SliceMap& map, const TestCubeSet& cubes,
                            int entries) {
  Dictionary dict;
  dict.params = DictParams::make(map.num_chains(), entries);
  // Entry 0 is all-X so idle/empty slices always match.
  dict.prototypes.push_back(
      TernaryVector(static_cast<std::size_t>(map.num_chains())));

  for (int p = 0; p < cubes.num_patterns(); ++p) {
    for (const TernaryVector& slice : map.slices_of_pattern(cubes, p)) {
      if (slice.count_care() == 0) continue;  // matches entry 0 already
      const int e = find_compatible(dict, slice);
      if (e >= 0) {
        dict.prototypes[static_cast<std::size_t>(e)].merge_with(slice);
      } else if (static_cast<int>(dict.prototypes.size()) <
                 dict.params.entries) {
        dict.prototypes.push_back(slice);
      }
    }
  }
  return dict;
}

DictCost dict_cost(const SliceMap& map, const TestCubeSet& cubes,
                   const Dictionary& dict) {
  DictCost cost;
  for (int p = 0; p < cubes.num_patterns(); ++p) {
    for (const TernaryVector& slice : map.slices_of_pattern(cubes, p)) {
      if (find_covering(dict, slice) >= 0) {
        ++cost.matched_slices;
        cost.total_cycles += 1;
      } else {
        ++cost.literal_slices;
        cost.total_cycles += dict.params.literal_cycles();
      }
    }
  }
  cost.total_bits = cost.total_cycles * dict.params.codeword_width();
  return cost;
}

DictStream dict_encode(const SliceMap& map, const TestCubeSet& cubes,
                       const Dictionary& dict) {
  DictStream s;
  s.params = dict.params;
  s.patterns = cubes.num_patterns();
  s.slices_per_pattern = map.depth();
  const int wd = dict.params.codeword_width();

  for (int p = 0; p < cubes.num_patterns(); ++p) {
    for (const TernaryVector& slice : map.slices_of_pattern(cubes, p)) {
      const int e = find_covering(dict, slice);
      if (e >= 0) {
        // Flag 1 in the serial-first bit 0, index above it.
        s.words.push_back((static_cast<std::uint32_t>(e) << 1) | 1u);
      } else {
        // Flag 0 word, then the raw slice bits packed wd per cycle
        // (X positions ship as 0).
        std::vector<bool> raw;
        raw.reserve(slice.size() + 1);
        for (std::size_t i = 0; i < slice.size(); ++i)
          raw.push_back(slice.get(i) == Trit::One);
        std::uint32_t word = 0;  // flag 0 occupies the first serial bit
        int filled = 1;
        for (bool bit : raw) {
          if (bit) word |= std::uint32_t{1} << filled;
          if (++filled == wd) {
            s.words.push_back(word);
            word = 0;
            filled = 0;
          }
        }
        if (filled != 0) s.words.push_back(word);
      }
    }
  }
  return s;
}

std::vector<std::vector<bool>> dict_decode(const DictStream& stream,
                                           const Dictionary& dict) {
  const int wd = stream.params.codeword_width();
  const int m = stream.params.m;
  std::vector<std::vector<bool>> slices;
  std::size_t i = 0;
  while (i < stream.words.size()) {
    const std::uint32_t first = stream.words[i++];
    if (first & 1u) {
      const std::uint32_t index = first >> 1;
      if (index >= dict.prototypes.size())
        throw std::invalid_argument("dict_decode: index beyond dictionary");
      slices.push_back(dict.ram_entry(static_cast<int>(index)));
    } else {
      std::vector<bool> slice;
      slice.reserve(static_cast<std::size_t>(m));
      std::uint32_t word = first;
      int consumed = 1;  // the flag bit
      while (static_cast<int>(slice.size()) < m) {
        if (consumed == wd) {
          if (i >= stream.words.size())
            throw std::invalid_argument("dict_decode: truncated literal");
          word = stream.words[i++];
          consumed = 0;
        }
        slice.push_back((word >> consumed) & 1u);
        ++consumed;
      }
      slices.push_back(std::move(slice));
    }
  }
  return slices;
}

DictArea dict_area(const DictParams& params) {
  DictArea a;
  // Output register + index latch + serial-assembly counter + control.
  a.flip_flops = params.m + params.index_bits() + 6 + params.codeword_width();
  a.gates = 30 + params.m / 4 + 4 * params.index_bits();
  a.ram_bits = static_cast<std::int64_t>(params.entries) * params.m;
  return a;
}

}  // namespace soctest
