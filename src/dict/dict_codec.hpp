// Dictionary-based scan-slice compression, after Li & Chakrabarty ("Test
// Data Compression Using Dictionaries with Fixed-Length Indices"; listed in
// the paper's related work). This is the second core-level compression
// technique of the library: combined with selective encoding it enables
// the per-core *compression technique selection* of the authors' follow-up
// work (Larsson/Zhang/Larsson/Chakrabarty, ATS 2008).
//
// Scheme: an on-chip RAM holds D fully-specified m-bit slices. Each test
// slice is transmitted either as a dictionary index (1 cycle: flag bit 1 +
// ceil(log2 D) index bits) or as a literal (flag bit 0 followed by the raw
// m bits, serialized over the same w_d = 1 + ceil(log2 D) wires). The
// dictionary is chosen greedily by merging ternary-compatible slices.
#pragma once

#include <cstdint>
#include <vector>

#include "bitvec/ternary_vector.hpp"
#include "dft/test_cube_set.hpp"
#include "wrapper/slice_map.hpp"

namespace soctest {

struct DictParams {
  int m = 0;             // slice width = wrapper chains
  int entries = 0;       // dictionary size D (power of two)

  static DictParams make(int m, int entries);

  int index_bits() const;
  /// TAM wires: one flag bit plus the index.
  int codeword_width() const;
  /// ATE cycles to ship one literal slice (flag + m raw bits).
  int literal_cycles() const;
};

struct Dictionary {
  DictParams params;
  /// Merged ternary prototypes; hardware programs X positions to 0.
  std::vector<TernaryVector> prototypes;

  /// Fully specified RAM content for entry e (X -> 0).
  std::vector<bool> ram_entry(int e) const;
};

/// Greedy dictionary construction over all slices of the cube set:
/// first-fit merge into a compatible prototype, new entry while room.
Dictionary build_dictionary(const SliceMap& map, const TestCubeSet& cubes,
                            int entries);

struct DictCost {
  std::int64_t matched_slices = 0;
  std::int64_t literal_slices = 0;
  std::int64_t total_cycles = 0;
  std::int64_t total_bits = 0;  // cycles * codeword_width
};

/// Exact cost of encoding `cubes` against `dict`.
DictCost dict_cost(const SliceMap& map, const TestCubeSet& cubes,
                   const Dictionary& dict);

/// Bit-accurate stream: one w_d-bit word per ATE cycle.
struct DictStream {
  DictParams params;
  std::vector<std::uint32_t> words;
  int patterns = 0;
  int slices_per_pattern = 0;
};

DictStream dict_encode(const SliceMap& map, const TestCubeSet& cubes,
                       const Dictionary& dict);

/// Decodes a stream back into fully specified slices (the decompressor
/// reference). Throws std::invalid_argument on truncated input.
std::vector<std::vector<bool>> dict_decode(const DictStream& stream,
                                           const Dictionary& dict);

struct DictArea {
  int flip_flops = 0;
  int gates = 0;
  std::int64_t ram_bits = 0;
};

DictArea dict_area(const DictParams& params);

}  // namespace soctest
