#include "dist/codec.hpp"

#include <sstream>
#include <stdexcept>

#include "io/json_value.hpp"
#include "portfolio/ladder_policy.hpp"
#include "report/json.hpp"

namespace soctest::dist {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::runtime_error("dist codec: invalid hex digit");
}

[[noreturn]] void bad(const std::string& message) {
  throw std::runtime_error("dist codec: " + message);
}

const JsonValue& field(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  if (!v) bad(std::string("missing field '") + key + "'");
  return *v;
}

int field_int(const JsonValue& doc, const char* key) {
  return static_cast<int>(field(doc, key).as_int64());
}

std::uint64_t field_u64(const JsonValue& doc, const char* key) {
  return field(doc, key).as_uint64();
}

bool field_bool(const JsonValue& doc, const char* key) {
  return field(doc, key).as_bool();
}

std::string field_str(const JsonValue& doc, const char* key) {
  return field(doc, key).as_string();
}

// SearchStats <-> fixed-order u64 array. Order is part of the wire
// format; extend at the END when SearchStats grows.
constexpr int kCounterCount = 15;

void counters_to(std::uint64_t (&a)[kCounterCount],
                 const runtime::SearchStats& s) {
  a[0] = s.candidates_generated;
  a[1] = s.candidates_pruned;
  a[2] = s.candidates_scheduled;
  a[3] = s.schedule_reuse_hits;
  a[4] = s.column_reuse_hits;
  a[5] = s.columns_computed;
  a[6] = s.anneal_proposals;
  a[7] = s.anneal_memo_hits;
  a[8] = s.anneal_bound_pruned;
  a[9] = s.warm_schedule_starts;
  a[10] = s.portfolio_proposals;
  a[11] = s.portfolio_swaps_attempted;
  a[12] = s.portfolio_swaps_accepted;
  a[13] = s.rect_packs;
  a[14] = s.rect_memo_hits;
}

runtime::SearchStats counters_from(const std::vector<std::uint64_t>& a) {
  if (a.size() != kCounterCount) bad("bye: wrong counter count");
  runtime::SearchStats s;
  s.candidates_generated = a[0];
  s.candidates_pruned = a[1];
  s.candidates_scheduled = a[2];
  s.schedule_reuse_hits = a[3];
  s.column_reuse_hits = a[4];
  s.columns_computed = a[5];
  s.anneal_proposals = a[6];
  s.anneal_memo_hits = a[7];
  s.anneal_bound_pruned = a[8];
  s.warm_schedule_starts = a[9];
  s.portfolio_proposals = a[10];
  s.portfolio_swaps_attempted = a[11];
  s.portfolio_swaps_accepted = a[12];
  s.rect_packs = a[13];
  s.rect_memo_hits = a[14];
  return s;
}

}  // namespace

std::string hex_encode(const std::vector<unsigned char>& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<unsigned char> hex_decode(const std::string& hex) {
  if (hex.size() % 2 != 0)
    throw std::runtime_error("dist codec: odd-length hex blob");
  std::vector<unsigned char> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<unsigned char>((hex_nibble(hex[i]) << 4) |
                                             hex_nibble(hex[i + 1])));
  return out;
}

std::string init_line(const WorkerInit& w) {
  std::vector<unsigned char> soc(w.soc_text.begin(), w.soc_text.end());
  std::ostringstream os;
  os << "{\"cmd\": \"init\""
     << ", \"soc_hex\": \"" << hex_encode(soc) << "\""
     << ", \"select\": " << (w.select ? "true" : "false")
     << ", \"emax_width\": " << w.explore_max_width
     << ", \"emax_chains\": " << w.explore_max_chains
     << ", \"width\": " << w.opts.width
     << ", \"mode\": " << static_cast<int>(w.opts.mode)
     << ", \"constraint\": " << static_cast<int>(w.opts.constraint)
     << ", \"max_buses\": " << w.opts.max_buses
     << ", \"max_steps\": " << w.opts.max_search_steps
     << ", \"power_bits\": "
     << portfolio::double_bits(w.opts.power_budget_mw)
     << ", \"incremental\": " << (w.opts.incremental ? "true" : "false")
     << ", \"capacity_bound\": "
     << (w.opts.capacity_bound ? "true" : "false")
     << ", \"preempt\": " << (w.opts.preemptive ? "true" : "false")
     << ", \"hier\": " << (w.opts.hierarchical ? "true" : "false")
     << ", \"backend\": " << static_cast<int>(w.opts.backend)
     << ", \"portfolio\": " << w.opts.portfolio
     << ", \"replicas\": " << w.popts.replicas
     << ", \"sweeps\": " << w.popts.sweeps
     << ", \"pps\": " << w.popts.proposals_per_sweep
     << ", \"t0_bits\": "
     << portfolio::double_bits(w.popts.initial_temperature)
     << ", \"ratio_bits\": "
     << portfolio::double_bits(w.popts.temperature_ratio)
     << ", \"cool_bits\": " << portfolio::double_bits(w.popts.cooling)
     << ", \"seed\": " << w.popts.seed
     << ", \"swaps\": " << (w.popts.swaps_enabled ? "true" : "false")
     << ", \"share_caches\": "
     << (w.popts.share_caches ? "true" : "false")
     << ", \"race\": " << (w.popts.race_hill_climb ? "true" : "false")
     << ", \"adaptive\": " << (w.popts.adaptive_ladder ? "true" : "false")
     << ", \"ladder\": " << w.ladder_size
     << ", \"begin\": " << w.slot_begin << ", \"end\": " << w.slot_end
     << ", \"start\": " << w.start_sweep << ", \"fp\": " << w.fingerprint
     << ", \"restore_hex\": \"" << w.restore_frame_hex << "\"}";
  return os.str();
}

std::string sweep_line(int sweep) {
  return "{\"cmd\": \"sweep\", \"sweep\": " + std::to_string(sweep) + "}";
}

std::string barrier_line(const BarrierCmd& b) {
  std::ostringstream os;
  os << "{\"cmd\": \"barrier\", \"sweep\": " << b.sweep << ", \"swaps\": [";
  for (std::size_t i = 0; i < b.swaps.size(); ++i)
    os << (i ? ", " : "") << b.swaps[i];
  os << "], \"adopts\": [";
  for (std::size_t i = 0; i < b.adopts.size(); ++i) {
    os << (i ? ", " : "") << "{\"slot\": " << b.adopts[i].first
       << ", \"widths\": [";
    const std::vector<int>& ws = b.adopts[i].second;
    for (std::size_t j = 0; j < ws.size(); ++j)
      os << (j ? ", " : "") << ws[j];
    os << "]}";
  }
  os << "], \"temps\": [";
  for (std::size_t i = 0; i < b.temps.size(); ++i)
    os << (i ? ", " : "") << b.temps[i];
  os << "]}";
  return os.str();
}

std::string finish_line() { return "{\"cmd\": \"finish\"}"; }

std::string ready_line(const std::string& frame_hex) {
  return "{\"event\": \"ready\", \"data\": \"" + frame_hex + "\"}";
}

std::string frame_line(int sweep, const std::string& frame_hex) {
  return "{\"event\": \"frame\", \"sweep\": " + std::to_string(sweep) +
         ", \"data\": \"" + frame_hex + "\"}";
}

std::string bye_line(const runtime::SearchStats& counters) {
  std::uint64_t a[kCounterCount];
  counters_to(a, counters);
  std::ostringstream os;
  os << "{\"event\": \"bye\", \"counters\": [";
  for (int i = 0; i < kCounterCount; ++i) os << (i ? ", " : "") << a[i];
  os << "]}";
  return os.str();
}

std::string error_line(const std::string& message) {
  return "{\"event\": \"error\", \"message\": \"" + json_escape(message) +
         "\"}";
}

CoordCmd parse_coord_cmd(const std::string& line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::exception& e) {
    bad(std::string("malformed command line: ") + e.what());
  }
  if (!doc.is_object()) bad("command must be a JSON object");
  const std::string cmd = field_str(doc, "cmd");

  CoordCmd out;
  if (cmd == "sweep") {
    out.kind = CoordCmd::Kind::Sweep;
    out.sweep = field_int(doc, "sweep");
    return out;
  }
  if (cmd == "finish") {
    out.kind = CoordCmd::Kind::Finish;
    return out;
  }
  if (cmd == "barrier") {
    out.kind = CoordCmd::Kind::Barrier;
    out.barrier.sweep = field_int(doc, "sweep");
    for (const JsonValue& v : field(doc, "swaps").items)
      out.barrier.swaps.push_back(static_cast<int>(v.as_int64()));
    for (const JsonValue& a : field(doc, "adopts").items) {
      std::pair<int, std::vector<int>> adopt;
      adopt.first = field_int(a, "slot");
      for (const JsonValue& wv : field(a, "widths").items)
        adopt.second.push_back(static_cast<int>(wv.as_int64()));
      out.barrier.adopts.push_back(std::move(adopt));
    }
    for (const JsonValue& t : field(doc, "temps").items)
      out.barrier.temps.push_back(t.as_uint64());
    return out;
  }
  if (cmd == "init") {
    out.kind = CoordCmd::Kind::Init;
    WorkerInit& w = out.init;
    const std::vector<unsigned char> soc =
        hex_decode(field_str(doc, "soc_hex"));
    w.soc_text.assign(soc.begin(), soc.end());
    w.select = field_bool(doc, "select");
    w.explore_max_width = field_int(doc, "emax_width");
    w.explore_max_chains = field_int(doc, "emax_chains");
    w.opts.width = field_int(doc, "width");
    w.opts.mode = static_cast<ArchMode>(field_int(doc, "mode"));
    w.opts.constraint =
        static_cast<ConstraintMode>(field_int(doc, "constraint"));
    w.opts.max_buses = field_int(doc, "max_buses");
    w.opts.max_search_steps = field_int(doc, "max_steps");
    w.opts.power_budget_mw =
        portfolio::bits_double(field_u64(doc, "power_bits"));
    w.opts.incremental = field_bool(doc, "incremental");
    w.opts.capacity_bound = field_bool(doc, "capacity_bound");
    w.opts.preemptive = field_bool(doc, "preempt");
    w.opts.hierarchical = field_bool(doc, "hier");
    {
      const int backend = field_int(doc, "backend");
      if (backend < static_cast<int>(BackendKind::FixedBus) ||
          backend > static_cast<int>(BackendKind::Race))
        bad("bad backend tag " + std::to_string(backend));
      w.opts.backend = static_cast<BackendKind>(backend);
    }
    w.opts.portfolio = field_int(doc, "portfolio");
    w.popts.replicas = field_int(doc, "replicas");
    w.popts.sweeps = field_int(doc, "sweeps");
    w.popts.proposals_per_sweep = field_int(doc, "pps");
    w.popts.initial_temperature =
        portfolio::bits_double(field_u64(doc, "t0_bits"));
    w.popts.temperature_ratio =
        portfolio::bits_double(field_u64(doc, "ratio_bits"));
    w.popts.cooling = portfolio::bits_double(field_u64(doc, "cool_bits"));
    w.popts.seed = field_u64(doc, "seed");
    w.popts.swaps_enabled = field_bool(doc, "swaps");
    w.popts.share_caches = field_bool(doc, "share_caches");
    w.popts.race_hill_climb = field_bool(doc, "race");
    w.popts.adaptive_ladder = field_bool(doc, "adaptive");
    w.ladder_size = field_int(doc, "ladder");
    w.slot_begin = field_int(doc, "begin");
    w.slot_end = field_int(doc, "end");
    w.start_sweep = field_int(doc, "start");
    w.fingerprint = field_u64(doc, "fp");
    w.restore_frame_hex = field_str(doc, "restore_hex");
    return out;
  }
  bad("unknown cmd '" + cmd + "'");
}

WorkerEvent parse_worker_event(const std::string& line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::exception& e) {
    bad(std::string("malformed event line: ") + e.what());
  }
  if (!doc.is_object()) bad("event must be a JSON object");
  const std::string event = field_str(doc, "event");

  WorkerEvent out;
  if (event == "ready") {
    out.kind = WorkerEvent::Kind::Ready;
    out.frame_hex = field_str(doc, "data");
    return out;
  }
  if (event == "frame") {
    out.kind = WorkerEvent::Kind::Frame;
    out.sweep = field_int(doc, "sweep");
    out.frame_hex = field_str(doc, "data");
    return out;
  }
  if (event == "bye") {
    out.kind = WorkerEvent::Kind::Bye;
    std::vector<std::uint64_t> a;
    for (const JsonValue& v : field(doc, "counters").items)
      a.push_back(v.as_uint64());
    out.counters = counters_from(a);
    return out;
  }
  if (event == "error") {
    out.kind = WorkerEvent::Kind::Error;
    out.message = field_str(doc, "message");
    return out;
  }
  bad("unknown event '" + event + "'");
}

}  // namespace soctest::dist
