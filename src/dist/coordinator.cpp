#include "dist/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/codec.hpp"
#include "io/soc_text.hpp"
#include "opt/backend.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/ladder_policy.hpp"
#include "portfolio/shard.hpp"
#include "runtime/stats.hpp"
#include "runtime/thread_pool.hpp"
#include "server/fd_io.hpp"

namespace soctest::dist {

namespace {

using portfolio::PortfolioCheckpoint;
using portfolio::RacerState;
using portfolio::ShardFrame;
using portfolio::ShardSlotState;
using server::LineReader;
using server::ReadStatus;

bool better(const OptimizationResult& a, const OptimizationResult& b) {
  if (a.test_time != b.test_time) return a.test_time < b.test_time;
  return a.data_volume_bits < b.data_volume_bits;
}

/// Transport loss: the worker's socket EOF'd, timed out, or failed hard.
/// Recoverable — the coordinator respawns and re-issues. Distinct from
/// std::runtime_error, which marks configuration/protocol failures that a
/// fresh process would only repeat.
class WorkerLost : public std::exception {
 public:
  explicit WorkerLost(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

struct WorkerConn {
  int index = 0;
  int slot_begin = 0;
  int slot_end = 0;
  pid_t pid = -1;           // > 0: spawned child to reap
  int fd = -1;
  std::unique_ptr<LineReader> reader;
  std::string attach_path;  // empty: spawned; else daemon socket to borrow
};

class Coordinator {
 public:
  Coordinator(const SocOptimizer& optimizer, const OptimizerOptions& opts,
              const PortfolioOptions& popts, const DistOptions& dopts)
      : opt_(optimizer), opts_(opts), popts_(popts), dopts_(dopts) {}

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  ~Coordinator() {
    for (WorkerConn& w : workers_) teardown(w);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(listen_path_.c_str());
    }
  }

  PortfolioResult run(const PortfolioCheckpoint* restore);

 private:
  void setup_topology(const PortfolioCheckpoint* restore);
  void setup_listen();
  void spawn(WorkerConn& w);
  void connect_attached(WorkerConn& w);
  void teardown(WorkerConn& w);
  /// Brings `w` up (spawn/connect + init + ready), spending respawn
  /// budget on every transport failure until it sticks or the budget is
  /// gone.
  void ensure_up(WorkerConn& w, int start_sweep);
  void init_worker(WorkerConn& w, int start_sweep);
  std::string restore_hex_for(const WorkerConn& w, int start_sweep) const;
  WorkerEvent read_event(WorkerConn& w);
  /// Validates a frame event against `w`'s slot range and installs its
  /// slots into the authoritative state.
  void apply_frame(const WorkerEvent& ev, const WorkerConn& w);
  /// One lockstep round: broadcast per-worker command lines, then collect
  /// one frame from each worker (respawning + re-issuing on loss).
  void round(const std::vector<std::string>& lines, int start_sweep);
  int worker_of(int slot) const;

  const SocOptimizer& opt_;
  const OptimizerOptions& opts_;
  const PortfolioOptions& popts_;
  const DistOptions& dopts_;

  int K_ = 0;
  std::uint64_t fp_ = 0;
  std::string soc_text_;
  int timeout_ms_ = -1;
  std::vector<WorkerConn> workers_;
  /// Ladder-order authoritative slot states: ready/post-sweep/post-barrier
  /// frames land here; checkpoints and respawn restores read from here.
  std::vector<ShardSlotState> auth_;
  bool seeded_ = false;  // auth_ holds real states (restore or ready seen)
  int listen_fd_ = -1;
  std::string listen_path_;
  std::vector<std::string> spawn_args_;  // prebuilt: no mallocs post-fork
  std::vector<char*> spawn_argv_;
  PortfolioStats stats_;
};

int Coordinator::worker_of(int slot) const {
  for (const WorkerConn& w : workers_)
    if (slot >= w.slot_begin && slot < w.slot_end) return w.index;
  throw std::logic_error("dist: slot outside every worker range");
}

void Coordinator::setup_listen() {
  static std::atomic<int> counter{0};
  listen_path_ = ".soctest-dist-" + std::to_string(::getpid()) + "-" +
                 std::to_string(counter.fetch_add(1)) + ".sock";
  listen_fd_ = server::listen_unix(listen_path_);
  if (listen_fd_ < 0)
    throw std::runtime_error("dist: cannot listen on " + listen_path_);

  const std::string cmd =
      dopts_.worker_cmd.empty() ? "/proc/self/exe" : dopts_.worker_cmd;
  spawn_args_ = {cmd, "--worker", listen_path_};
  if (dopts_.worker_jobs > 0) {
    spawn_args_.push_back("--jobs");
    spawn_args_.push_back(std::to_string(dopts_.worker_jobs));
  }
  for (std::string& a : spawn_args_)
    spawn_argv_.push_back(const_cast<char*>(a.c_str()));
  spawn_argv_.push_back(nullptr);
}

void Coordinator::spawn(WorkerConn& w) {
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("dist: fork failed");
  if (pid == 0) {
    // Child: argv was prebuilt before any fork, so nothing here
    // allocates — safe even with the racer's pool threads running.
    ::execv(spawn_argv_[0], spawn_argv_.data());
    _exit(127);
  }
  w.pid = pid;
  pollfd p{listen_fd_, POLLIN, 0};
  const int pr = ::poll(&p, 1, 30000);
  if (pr <= 0) throw WorkerLost("spawned worker did not connect back");
  w.fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (w.fd < 0) throw WorkerLost("accept on worker socket failed");
  w.reader = std::make_unique<LineReader>(w.fd);
}

void Coordinator::connect_attached(WorkerConn& w) {
  w.fd = server::connect_unix(w.attach_path);
  if (w.fd < 0)
    throw WorkerLost("cannot connect to attached daemon " + w.attach_path);
  if (!server::fd_write_all(w.fd, "{\"op\": \"worker\"}\n"))
    throw WorkerLost("attached daemon rejected the worker handshake");
  w.reader = std::make_unique<LineReader>(w.fd);
}

void Coordinator::teardown(WorkerConn& w) {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  w.reader.reset();
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    ::waitpid(w.pid, nullptr, 0);
    w.pid = -1;
  }
}

std::string Coordinator::restore_hex_for(const WorkerConn& w,
                                         int start_sweep) const {
  if (!seeded_) return {};  // fresh run: workers build fresh walks
  ShardFrame f;
  f.fingerprint = fp_;
  f.sweep = start_sweep;
  f.slot_begin = w.slot_begin;
  f.slot_end = w.slot_end;
  f.slots.assign(auth_.begin() + w.slot_begin, auth_.begin() + w.slot_end);
  return hex_encode(portfolio::encode_shard_frame(f));
}

WorkerEvent Coordinator::read_event(WorkerConn& w) {
  std::string line;
  switch (w.reader->read_line(&line, timeout_ms_)) {
    case ReadStatus::Ok:
      break;
    case ReadStatus::Eof:
      throw WorkerLost("worker " + std::to_string(w.index) + " hung up");
    case ReadStatus::Timeout:
      throw WorkerLost("worker " + std::to_string(w.index) + " timed out");
    case ReadStatus::Error:
      throw WorkerLost("read from worker " + std::to_string(w.index) +
                       " failed");
  }
  const WorkerEvent ev = parse_worker_event(line);
  if (ev.kind == WorkerEvent::Kind::Error)
    throw std::runtime_error("dist: worker " + std::to_string(w.index) +
                             " reported: " + ev.message);
  return ev;
}

void Coordinator::apply_frame(const WorkerEvent& ev, const WorkerConn& w) {
  const ShardFrame f =
      portfolio::decode_shard_frame(hex_decode(ev.frame_hex));
  if (f.fingerprint != fp_)
    throw std::runtime_error("dist: frame fingerprint mismatch from worker " +
                             std::to_string(w.index));
  if (f.slot_begin != w.slot_begin || f.slot_end != w.slot_end)
    throw std::runtime_error("dist: frame slot range mismatch from worker " +
                             std::to_string(w.index));
  std::copy(f.slots.begin(), f.slots.end(), auth_.begin() + w.slot_begin);
}

void Coordinator::init_worker(WorkerConn& w, int start_sweep) {
  WorkerInit init;
  init.soc_text = soc_text_;
  init.select = dopts_.select;
  init.explore_max_width = dopts_.explore_max_width;
  init.explore_max_chains = dopts_.explore_max_chains;
  init.opts = opts_;
  init.opts.cancel = nullptr;  // runtime-only, process-local
  init.popts = popts_;
  init.popts.cancel = nullptr;
  init.popts.progress = nullptr;
  init.popts.checkpoint_path.clear();  // the coordinator checkpoints
  init.popts.memo = nullptr;
  init.popts.columns = nullptr;
  init.ladder_size = K_;
  init.slot_begin = w.slot_begin;
  init.slot_end = w.slot_end;
  init.start_sweep = start_sweep;
  init.fingerprint = fp_;
  init.restore_frame_hex = restore_hex_for(w, start_sweep);
  if (!server::fd_write_all(w.fd, init_line(init) + "\n"))
    throw WorkerLost("init send to worker " + std::to_string(w.index) +
                     " failed");
  const WorkerEvent ev = read_event(w);
  if (ev.kind != WorkerEvent::Kind::Ready)
    throw std::runtime_error("dist: worker " + std::to_string(w.index) +
                             " answered init with a non-ready event");
  apply_frame(ev, w);
}

void Coordinator::ensure_up(WorkerConn& w, int start_sweep) {
  while (true) {
    try {
      if (w.fd < 0) {
        if (w.attach_path.empty())
          spawn(w);
        else
          connect_attached(w);
      }
      init_worker(w, start_sweep);
      return;
    } catch (const WorkerLost& e) {
      teardown(w);
      if (stats_.dist_respawns >= dopts_.max_respawns)
        throw std::runtime_error(
            std::string("dist: respawn budget exhausted: ") + e.what());
      ++stats_.dist_respawns;
    }
  }
}

void Coordinator::round(const std::vector<std::string>& lines,
                        int start_sweep) {
  for (WorkerConn& w : workers_)
    server::fd_write_all(w.fd, lines[static_cast<std::size_t>(w.index)] +
                                   "\n");  // loss surfaces on the read
  for (WorkerConn& w : workers_) {
    while (true) {
      try {
        const WorkerEvent ev = read_event(w);
        if (ev.kind != WorkerEvent::Kind::Frame)
          throw std::runtime_error("dist: worker " +
                                   std::to_string(w.index) +
                                   " sent a non-frame event mid-round");
        apply_frame(ev, w);
        break;
      } catch (const WorkerLost& e) {
        teardown(w);
        if (stats_.dist_respawns >= dopts_.max_respawns)
          throw std::runtime_error(
              std::string("dist: respawn budget exhausted: ") + e.what());
        ++stats_.dist_respawns;
        // Replacement resumes from the authoritative states (its own
        // slots are untouched by this half-finished round), then the
        // in-flight command is re-issued.
        ensure_up(w, start_sweep);
        server::fd_write_all(
            w.fd, lines[static_cast<std::size_t>(w.index)] + "\n");
      }
    }
  }
}

void Coordinator::setup_topology(const PortfolioCheckpoint* restore) {
  int W = dopts_.attach.empty() ? dopts_.workers
                                : static_cast<int>(dopts_.attach.size());
  if (W < 1)
    throw std::invalid_argument("dist: workers must be >= 1");
  W = std::min(W, K_);  // never more processes than ladder slots
  workers_.resize(static_cast<std::size_t>(W));
  for (int i = 0; i < W; ++i) {
    WorkerConn& w = workers_[static_cast<std::size_t>(i)];
    w.index = i;
    const auto range = portfolio::shard_slot_range(K_, W, i);
    w.slot_begin = range.first;
    w.slot_end = range.second;
    if (!dopts_.attach.empty())
      w.attach_path = dopts_.attach[static_cast<std::size_t>(i)];
  }
  if (dopts_.attach.empty()) setup_listen();
  const int first_sweep = restore ? restore->sweeps_completed : 0;
  for (WorkerConn& w : workers_) ensure_up(w, first_sweep);
  stats_.dist_workers = W;
}

PortfolioResult Coordinator::run(const PortfolioCheckpoint* restore) {
  K_ = portfolio::resolved_ladder_size(opts_, popts_);
  if (K_ < 1) throw std::invalid_argument("portfolio: replicas must be >= 1");
  if (popts_.proposals_per_sweep < 1)
    throw std::invalid_argument("portfolio: proposals_per_sweep must be >= 1");
  if (popts_.sweeps < 0)
    throw std::invalid_argument("portfolio: sweeps must be >= 0");

  const auto t0 = std::chrono::steady_clock::now();
  runtime::PhaseTimer timer("portfolio");
  const auto elapsed = [](std::chrono::steady_clock::time_point since) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
  };

  fp_ = portfolio_fingerprint(opt_, opts_, popts_);
  {
    std::ostringstream os;
    write_soc_text(os, opt_.soc());
    soc_text_ = os.str();
  }
  timeout_ms_ = dopts_.sweep_timeout_s > 0.0
                    ? static_cast<int>(dopts_.sweep_timeout_s * 1000.0)
                    : -1;

  stats_.replicas = K_;
  int first_sweep = 0;
  std::uint64_t restored_proposals = 0;
  OptimizationResult racer_result;
  bool racer_done = false;
  std::future<OptimizationResult> racer;
  bool racer_pending = false;
  std::vector<std::uint64_t> win_att(K_ > 0 ? K_ - 1 : 0, 0);
  std::vector<std::uint64_t> win_acc(K_ > 0 ? K_ - 1 : 0, 0);
  auth_.assign(static_cast<std::size_t>(K_), ShardSlotState{});

  if (restore) {
    if (static_cast<int>(restore->replicas.size()) != K_)
      throw std::runtime_error("portfolio: checkpoint replica count " +
                               std::to_string(restore->replicas.size()) +
                               " != configured " + std::to_string(K_));
    for (int r = 0; r < K_; ++r)
      auth_[static_cast<std::size_t>(r)].state =
          restore->replicas[static_cast<std::size_t>(r)];
    for (std::size_t p = 0;
         p < win_att.size() && p < restore->retune_window_attempted.size();
         ++p)
      win_att[p] = restore->retune_window_attempted[p];
    for (std::size_t p = 0;
         p < win_acc.size() && p < restore->retune_window_accepted.size();
         ++p)
      win_acc[p] = restore->retune_window_accepted[p];
    first_sweep = restore->sweeps_completed;
    stats_.sweeps_completed = restore->sweeps_completed;
    stats_.swaps_attempted = restore->swaps_attempted;
    stats_.swaps_accepted = restore->swaps_accepted;
    stats_.proposals_total = restore->proposals_total;
    restored_proposals = restore->proposals_total;
    stats_.best_by_sweep = restore->best_by_sweep;
    seeded_ = true;  // init frames restore the checkpointed states
    if (restore->racer_state == RacerState::Done) {
      TamArchitecture arch;
      arch.widths = restore->racer_best_widths;
      racer_result = opt_.evaluate(arch, opts_);
      racer_done = true;
    }
  }

  setup_topology(restore);
  seeded_ = true;  // from here on, ready frames filled auth_
  stats_.dist_setup_seconds = elapsed(t0);

  if (popts_.race_hill_climb) {
    stats_.hill_climb_raced = true;
    if (!racer_done) {
      // Same racer as the single-process portfolio; with the walks in
      // other processes there is no cache to share, and the result is
      // deterministic either way.
      racer = runtime::effective_pool().async(
          [this] { return opt_.optimize_shared(opts_, nullptr, nullptr); });
      racer_pending = true;
    }
  }

  const std::uint64_t sweep_proposals =
      static_cast<std::uint64_t>(K_) *
      static_cast<std::uint64_t>(popts_.proposals_per_sweep);

  bool checkpointing = !popts_.checkpoint_path.empty();
  const auto write_checkpoint = [&](RacerState racer_state) {
    if (!checkpointing) return;
    PortfolioCheckpoint ck;
    ck.fingerprint = fp_;
    ck.backend = opts_.backend;
    ck.scenario = scenario_of(opts_);
    ck.sweeps_completed = stats_.sweeps_completed;
    ck.swaps_attempted = stats_.swaps_attempted;
    ck.swaps_accepted = stats_.swaps_accepted;
    ck.proposals_total = stats_.proposals_total;
    ck.racer_state = racer_state;
    if (racer_state == RacerState::Done)
      ck.racer_best_widths = racer_result.arch.widths;
    ck.best_by_sweep = stats_.best_by_sweep;
    if (popts_.adaptive_ladder) {
      ck.retune_window_attempted = win_att;
      ck.retune_window_accepted = win_acc;
    }
    for (int r = 0; r < K_; ++r)
      ck.replicas.push_back(auth_[static_cast<std::size_t>(r)].state);
    try {
      portfolio::write_checkpoint_file(popts_.checkpoint_path, ck);
    } catch (const portfolio::CheckpointIoError& e) {
      stats_.checkpoint_error = e.what();
      checkpointing = false;
    }
  };

  const auto sweep_t0 = std::chrono::steady_clock::now();
  const int W = static_cast<int>(workers_.size());
  for (int sweep = first_sweep; sweep < popts_.sweeps; ++sweep) {
    if (popts_.cancel && popts_.cancel->cancelled()) break;
    if (popts_.max_seconds > 0.0 && elapsed(t0) >= popts_.max_seconds) break;
    if (popts_.max_proposals > 0 &&
        stats_.proposals_total + sweep_proposals > popts_.max_proposals)
      break;

    if (sweep == dopts_.kill_at_sweep && dopts_.kill_worker >= 0 &&
        dopts_.kill_worker < W) {
      // Test hook: a deterministic crash right before the broadcast.
      const WorkerConn& victim =
          workers_[static_cast<std::size_t>(dopts_.kill_worker)];
      if (victim.pid > 0) ::kill(victim.pid, SIGKILL);
    }

    // Barrier 1: every worker advances its slots one sweep.
    round(std::vector<std::string>(static_cast<std::size_t>(W),
                                   sweep_line(sweep)),
          sweep);
    stats_.proposals_total += sweep_proposals;

    // Exchange decisions on the authoritative post-sweep states — the
    // identical pure function of the identical inputs the single-process
    // loop uses.
    std::vector<BarrierCmd> cmds(static_cast<std::size_t>(W));
    for (BarrierCmd& c : cmds) c.sweep = sweep;
    if (popts_.swaps_enabled) {
      for (int lo = sweep % 2; lo + 1 < K_; lo += 2) {
        ++stats_.swaps_attempted;
        const ShardSlotState& hot = auth_[static_cast<std::size_t>(lo)];
        const ShardSlotState& cold = auth_[static_cast<std::size_t>(lo + 1)];
        const bool accept = portfolio::swap_decision(
            portfolio::bits_double(hot.state.temperature_bits),
            portfolio::bits_double(cold.state.temperature_bits),
            hot.cur_time, cold.cur_time, popts_.seed, sweep, lo);
        if (popts_.adaptive_ladder) ++win_att[static_cast<std::size_t>(lo)];
        if (!accept) continue;
        ++stats_.swaps_accepted;
        if (popts_.adaptive_ladder) ++win_acc[static_cast<std::size_t>(lo)];
        const int wlo = worker_of(lo);
        const int whi = worker_of(lo + 1);
        if (wlo == whi) {
          cmds[static_cast<std::size_t>(wlo)].swaps.push_back(lo);
        } else {
          // The pair straddles a worker boundary: each side adopts the
          // partner's current widths (re-evaluation is deterministic, so
          // this equals an in-process exchange).
          cmds[static_cast<std::size_t>(wlo)].adopts.emplace_back(
              lo, cold.state.current_widths);
          cmds[static_cast<std::size_t>(whi)].adopts.emplace_back(
              lo + 1, hot.state.current_widths);
        }
      }
    }

    if (popts_.adaptive_ladder && popts_.swaps_enabled &&
        (sweep + 1) % portfolio::kRetuneEverySweeps == 0) {
      std::vector<double> temps(static_cast<std::size_t>(K_));
      for (int r = 0; r < K_; ++r)
        temps[static_cast<std::size_t>(r)] = portfolio::bits_double(
            auth_[static_cast<std::size_t>(r)].state.temperature_bits);
      portfolio::retune_ladder(temps, win_att, win_acc);
      std::vector<std::uint64_t> bits(static_cast<std::size_t>(K_));
      for (int r = 0; r < K_; ++r)
        bits[static_cast<std::size_t>(r)] =
            portfolio::double_bits(temps[static_cast<std::size_t>(r)]);
      for (BarrierCmd& c : cmds) c.temps = bits;
      std::fill(win_att.begin(), win_att.end(), 0);
      std::fill(win_acc.begin(), win_acc.end(), 0);
    }

    // Barrier 2: apply the decisions; the returned post-barrier frames
    // become the authoritative (and checkpointable) ladder state.
    {
      std::vector<std::string> lines;
      lines.reserve(static_cast<std::size_t>(W));
      for (const BarrierCmd& c : cmds) lines.push_back(barrier_line(c));
      round(lines, sweep);
    }

    std::int64_t sweep_best = auth_[0].best_time;
    for (int r = 1; r < K_; ++r)
      sweep_best =
          std::min(sweep_best, auth_[static_cast<std::size_t>(r)].best_time);
    stats_.best_by_sweep.push_back(sweep_best);
    stats_.sweeps_completed = sweep + 1;

    if (popts_.progress) {
      PortfolioProgress pg;
      pg.sweep = sweep + 1;
      pg.sweeps_total = popts_.sweeps;
      pg.incumbent = sweep_best;
      pg.proposals = stats_.proposals_total;
      popts_.progress(pg);
    }

    if (!popts_.checkpoint_path.empty() && popts_.checkpoint_every > 0 &&
        (sweep + 1) % popts_.checkpoint_every == 0 &&
        sweep + 1 < popts_.sweeps) {
      write_checkpoint(popts_.race_hill_climb ? RacerState::Pending
                                              : RacerState::None);
    }
  }
  stats_.dist_sweep_seconds = elapsed(sweep_t0);

  // Retire the fleet: byes carry each worker's evaluator counters (pure
  // observability — a worker that died right here costs counters, never
  // correctness).
  for (WorkerConn& w : workers_) {
    if (w.fd < 0) continue;
    if (!server::fd_write_all(w.fd, finish_line() + "\n")) continue;
    try {
      const WorkerEvent ev = read_event(w);
      if (ev.kind == WorkerEvent::Kind::Bye)
        runtime::add_search_counters(ev.counters);
    } catch (const WorkerLost&) {
    }
  }
  for (WorkerConn& w : workers_) {
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    w.reader.reset();
    if (w.pid > 0) {
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
  }

  if (racer_pending) {
    racer_result = racer.get();
    racer_done = true;
  }

  PortfolioResult out;
  out.replica_best.reserve(static_cast<std::size_t>(K_));
  for (int r = 0; r < K_; ++r) {
    const ShardSlotState& s = auth_[static_cast<std::size_t>(r)];
    TamArchitecture arch;
    arch.widths = s.state.best_widths;
    // Deterministic re-evaluation reproduces the walk's stored best bit
    // for bit — the same identity the checkpoint restore path relies on.
    out.replica_best.push_back(opt_.evaluate(arch, opts_));
    PortfolioReplicaReport rep;
    rep.initial_temperature = portfolio::ladder_temperature(popts_, r);
    rep.proposals = s.state.proposals;
    rep.best_test_time =
        out.replica_best[static_cast<std::size_t>(r)].test_time;
    stats_.replica.push_back(rep);
  }
  out.best = out.replica_best[0];
  for (int r = 1; r < K_; ++r)
    if (better(out.replica_best[static_cast<std::size_t>(r)], out.best))
      out.best = out.replica_best[static_cast<std::size_t>(r)];
  if (racer_done && better(racer_result, out.best)) {
    out.best = racer_result;
    stats_.hill_climb_won = true;
  }

  // backend == Race: same end-merge as the single-process portfolio. The
  // rect climb runs in the coordinator process and depends only on
  // (optimizer, opts), so the merged report stays byte-identical for every
  // (workers x jobs) split.
  if (opts_.backend == BackendKind::Race) {
    stats_.rect_raced = true;
    bool rect_won = false;
    out.best = race_merge_rect(opt_, opts_, std::move(out.best), &rect_won);
    stats_.rect_won = rect_won;
  }

  if (!popts_.checkpoint_path.empty())
    write_checkpoint(racer_done ? RacerState::Done : RacerState::None);

  runtime::SearchStats ps;
  ps.portfolio_proposals = stats_.proposals_total - restored_proposals;
  ps.portfolio_swaps_attempted =
      stats_.swaps_attempted - (restore ? restore->swaps_attempted : 0);
  ps.portfolio_swaps_accepted =
      stats_.swaps_accepted - (restore ? restore->swaps_accepted : 0);
  runtime::add_search_counters(ps);

  out.best.cpu_seconds = elapsed(t0);
  out.stats = std::move(stats_);
  return out;
}

}  // namespace

PortfolioResult optimize_portfolio_distributed(const SocOptimizer& optimizer,
                                               const OptimizerOptions& opts,
                                               const PortfolioOptions& popts,
                                               const DistOptions& dopts) {
  if (opts.backend == BackendKind::Rect)
    throw std::invalid_argument(
        "portfolio: the rect backend has no tempering ladder — use "
        "backend=race to race it beside the fixed-bus portfolio");
  Coordinator c(optimizer, opts, popts, dopts);
  return c.run(nullptr);
}

PortfolioResult resume_portfolio_distributed(
    const SocOptimizer& optimizer, const OptimizerOptions& opts,
    const PortfolioOptions& popts, const DistOptions& dopts,
    const std::string& checkpoint_path) {
  if (opts.backend == BackendKind::Rect)
    throw std::invalid_argument(
        "portfolio: the rect backend has no tempering ladder — use "
        "backend=race to race it beside the fixed-bus portfolio");
  const PortfolioCheckpoint ck =
      portfolio::read_checkpoint_file(checkpoint_path);
  if (ck.backend != opts.backend)
    throw std::runtime_error("portfolio: checkpoint backend '" +
                             to_string(ck.backend) +
                             "' does not match requested backend '" +
                             to_string(opts.backend) + "'");
  portfolio::check_checkpoint_scenario(ck, scenario_of(opts));
  if (ck.fingerprint != portfolio_fingerprint(optimizer, opts, popts))
    throw std::runtime_error(
        "portfolio: checkpoint fingerprint mismatch — it was written for a "
        "different SOC / optimizer / portfolio configuration");
  Coordinator c(optimizer, opts, popts, dopts);
  return c.run(&ck);
}

}  // namespace soctest::dist
