// NDJSON message codec for the distributed replica-exchange portfolio.
// One JSON object per line in each direction over a unix-socket byte
// stream (server/fd_io.hpp framing).
//
// Coordinator -> worker commands ({"cmd": ...}):
//   init     the full problem universe: SOC text (hex), explore band,
//            optimizer options, trajectory-defining portfolio parameters
//            (doubles as raw IEEE-754 bits — text round-trips drift, bits
//            never do), the worker's ladder-global slot range, the resume
//            cursor, the configuration fingerprint, and optionally a
//            restore frame (hex SOCPFSH1 blob) to continue from.
//   sweep    run one sweep over the local slots, reply with a frame.
//   barrier  apply this sweep's exchange decisions: local adjacent-pair
//            swaps, cross-worker adoptions (partner's current widths),
//            and optionally a retuned temperature ladder (all K slots,
//            raw bits). Reply with a post-barrier frame.
//   finish   stop; reply with a bye carrying the evaluator counters.
//
// Worker -> coordinator events ({"event": ...}):
//   ready    init accepted; carries the initial frame so the coordinator
//            holds authoritative states before the first sweep.
//   frame    the slot states after a sweep / barrier (hex SOCPFSH1 blob,
//            fingerprint-guarded — see portfolio/checkpoint.hpp).
//   bye      terminal; the worker's summed SearchStats counters.
//   error    terminal; human-readable reason (fingerprint mismatch,
//            malformed frame, evaluation failure).
//
// Every parse is strict: unknown cmd/event, missing fields, or malformed
// hex throw std::runtime_error — a corrupted exchange must abort the run
// cleanly, never mis-resume a replica.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "opt/soc_optimizer.hpp"
#include "portfolio/portfolio.hpp"
#include "runtime/stats.hpp"

namespace soctest::dist {

std::string hex_encode(const std::vector<unsigned char>& bytes);
/// Throws std::runtime_error on odd length or a non-hex digit.
std::vector<unsigned char> hex_decode(const std::string& hex);

/// Everything a worker needs to reconstruct the coordinator's problem
/// universe bit-exactly. Runtime-only fields of the embedded option
/// structs (cancel tokens, progress callbacks, cache pointers, checkpoint
/// paths) do not travel — they are process-local by nature.
struct WorkerInit {
  std::string soc_text;
  bool select = false;  // tables built with per-core technique selection
  int explore_max_width = 64;
  int explore_max_chains = 255;
  OptimizerOptions opts;
  PortfolioOptions popts;
  int ladder_size = 0;
  int slot_begin = 0;
  int slot_end = 0;
  int start_sweep = 0;
  std::uint64_t fingerprint = 0;
  std::string restore_frame_hex;  // empty = start from fresh walks
};

/// One sweep's exchange decisions for one worker, applied at the barrier.
struct BarrierCmd {
  int sweep = 0;
  /// Ladder-global lo indices with both lo and lo+1 local: exchange().
  std::vector<int> swaps;
  /// Cross-worker halves: the local slot adopts these current widths.
  std::vector<std::pair<int, std::vector<int>>> adopts;
  /// Retuned ladder (raw bits, all ladder_size slots); empty = no retune.
  std::vector<std::uint64_t> temps;
};

struct CoordCmd {
  enum class Kind { Init, Sweep, Barrier, Finish };
  Kind kind = Kind::Finish;
  WorkerInit init;      // Kind::Init
  int sweep = 0;        // Kind::Sweep
  BarrierCmd barrier;   // Kind::Barrier
};

struct WorkerEvent {
  enum class Kind { Ready, Frame, Bye, Error };
  Kind kind = Kind::Error;
  int sweep = 0;              // Frame
  std::string frame_hex;      // Ready, Frame
  runtime::SearchStats counters;  // Bye
  std::string message;        // Error
};

// Line builders (no trailing newline).
std::string init_line(const WorkerInit& init);
std::string sweep_line(int sweep);
std::string barrier_line(const BarrierCmd& b);
std::string finish_line();
std::string ready_line(const std::string& frame_hex);
std::string frame_line(int sweep, const std::string& frame_hex);
std::string bye_line(const runtime::SearchStats& counters);
std::string error_line(const std::string& message);

// Strict parsers; throw std::runtime_error on anything unexpected.
CoordCmd parse_coord_cmd(const std::string& line);
WorkerEvent parse_worker_event(const std::string& line);

}  // namespace soctest::dist
