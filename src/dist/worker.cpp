#include "dist/worker.hpp"

#include <unistd.h>

#include <exception>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/codec.hpp"
#include "explore/technique_select.hpp"
#include "io/soc_text.hpp"
#include "opt/delta_evaluator.hpp"
#include "portfolio/checkpoint.hpp"
#include "portfolio/shard.hpp"
#include "server/fd_io.hpp"

namespace soctest::dist {

namespace {

using server::LineReader;
using server::ReadStatus;

bool emit(int fd, const std::string& line) {
  return server::fd_write_all(fd, line + "\n");
}

void restore_from_frame(portfolio::LadderShard& shard,
                        const WorkerInit& init,
                        const std::string& frame_hex) {
  const portfolio::ShardFrame frame =
      portfolio::decode_shard_frame(hex_decode(frame_hex));
  if (frame.fingerprint != init.fingerprint)
    throw std::runtime_error("restore frame fingerprint mismatch");
  if (frame.slot_begin != init.slot_begin || frame.slot_end != init.slot_end)
    throw std::runtime_error("restore frame covers slots [" +
                             std::to_string(frame.slot_begin) + ", " +
                             std::to_string(frame.slot_end) +
                             "), worker owns [" +
                             std::to_string(init.slot_begin) + ", " +
                             std::to_string(init.slot_end) + ")");
  for (int s = init.slot_begin; s < init.slot_end; ++s)
    shard.restore(
        s, frame.slots[static_cast<std::size_t>(s - init.slot_begin)].state);
}

void serve(int fd, LineReader& reader) {
  // --- Init: rebuild the coordinator's problem universe. ---
  std::string line;
  if (reader.read_line(&line, -1) != ReadStatus::Ok) return;
  CoordCmd cmd = parse_coord_cmd(line);
  if (cmd.kind != CoordCmd::Kind::Init)
    throw std::runtime_error("expected init, got another command");
  const WorkerInit init = cmd.init;

  std::istringstream soc_in(init.soc_text);
  const SocSpec soc = read_soc_text(soc_in);
  ExploreOptions eopts;
  eopts.max_width = init.explore_max_width;
  eopts.max_chains = init.explore_max_chains;
  std::optional<SocOptimizer> optimizer;
  if (init.select)
    optimizer.emplace(soc, explore_soc_with_selection(soc, eopts), eopts);
  else
    optimizer.emplace(soc, eopts);

  // The fingerprint check front-loads every "different universe" failure
  // (SOC text drift, option skew between binary versions) before any
  // search state exists.
  const std::uint64_t fp =
      portfolio_fingerprint(*optimizer, init.opts, init.popts);
  if (fp != init.fingerprint)
    throw std::runtime_error(
        "configuration fingerprint mismatch: coordinator sent " +
        std::to_string(init.fingerprint) + ", worker derived " +
        std::to_string(fp));

  // Process-local shared caches: same sharing policy as the
  // single-process run, scoped to this worker's slots. Cache population
  // order is invisible in the trajectories, so process-local caches keep
  // the byte-identity invariant.
  ScheduleMemo memo;
  ColumnCache columns;
  ScheduleMemo* m = init.popts.share_caches ? &memo : nullptr;
  ColumnCache* c = init.popts.share_caches ? &columns : nullptr;
  portfolio::LadderShard shard(*optimizer, init.opts, init.popts,
                               init.ladder_size, init.slot_begin,
                               init.slot_end, m, c);
  if (!init.restore_frame_hex.empty())
    restore_from_frame(shard, init, init.restore_frame_hex);

  const auto frame_hex = [&](int sweep) {
    return hex_encode(portfolio::encode_shard_frame(shard.frame(fp, sweep)));
  };
  if (!emit(fd, ready_line(frame_hex(init.start_sweep)))) return;

  // --- Lockstep: sweep -> frame, barrier -> frame, finish -> bye. ---
  while (true) {
    switch (reader.read_line(&line, -1)) {
      case ReadStatus::Ok:
        break;
      case ReadStatus::Eof:
      case ReadStatus::Error:
        return;  // coordinator gone; nothing useful left to say
      case ReadStatus::Timeout:
        continue;  // unreachable with an infinite timeout
    }
    cmd = parse_coord_cmd(line);
    switch (cmd.kind) {
      case CoordCmd::Kind::Init:
        throw std::runtime_error("duplicate init");
      case CoordCmd::Kind::Sweep: {
        shard.run_sweep();
        if (!emit(fd, frame_line(cmd.sweep, frame_hex(cmd.sweep + 1))))
          return;
        break;
      }
      case CoordCmd::Kind::Barrier: {
        const BarrierCmd& b = cmd.barrier;
        for (int lo : b.swaps) shard.exchange(lo);
        for (const auto& adopt : b.adopts)
          shard.walk(adopt.first).adopt_current(adopt.second);
        if (!b.temps.empty()) {
          if (static_cast<int>(b.temps.size()) != init.ladder_size)
            throw std::runtime_error("barrier retune ladder size mismatch");
          for (int s = init.slot_begin; s < init.slot_end; ++s)
            shard.walk(s).set_temperature_bits(
                b.temps[static_cast<std::size_t>(s)]);
        }
        if (!emit(fd, frame_line(b.sweep, frame_hex(b.sweep + 1)))) return;
        break;
      }
      case CoordCmd::Kind::Finish:
        emit(fd, bye_line(shard.counters()));
        return;
    }
  }
}

}  // namespace

void run_worker_loop(int fd, std::string carry) {
  LineReader reader(fd, std::move(carry));
  try {
    serve(fd, reader);
  } catch (const std::exception& e) {
    // Best effort: the coordinator may already be gone.
    emit(fd, error_line(e.what()));
  }
}

int run_worker(const std::string& socket_path) {
  const int fd = server::connect_unix(socket_path);
  if (fd < 0) return 1;
  run_worker_loop(fd);
  ::close(fd);
  return 0;
}

}  // namespace soctest::dist
