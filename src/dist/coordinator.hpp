// Distributed replica-exchange coordinator: shards the K-slot temperature
// ladder across W worker processes and drives them in lockstep, producing
// a PortfolioResult byte-identical to optimize_portfolio() for every
// (workers x jobs) split.
//
// Why byte-identity holds: slot indices are ladder-global, so every
// worker builds the identical walks (temperature, RNG stream, budget) the
// single-process shard would; swap decisions are the same pure function
// portfolio::swap_decision of (frame temperatures, frame energies, seed,
// sweep, pair) the single-process loop uses; and the only cross-process
// state — current configurations at an accepted exchange — travels as
// exact width vectors whose re-evaluation is deterministic. Caches are
// process-local and invisible in trajectories.
//
// Per sweep, two barriers:
//   1. broadcast sweep        -> collect post-sweep frames
//      (coordinator computes swap decisions + optional ladder retune)
//   2. broadcast barrier      -> collect post-barrier frames
// The post-barrier frames are the authoritative ladder state: checkpoints
// are assembled from them (byte-identical to single-process checkpoint
// blobs, so runs are cross-resumable), and a crashed worker is respawned
// and re-initialised from them — the run degrades, it never diverges.
//
// Crash handling: every fd is CLOEXEC, so a dead worker yields EOF on its
// socket. The coordinator reaps it, spawns a replacement (or reconnects,
// for attached daemon workers), re-sends init with a restore frame built
// from the authoritative states, re-sends the in-flight command, and
// carries on — up to max_respawns times. A worker-reported error event
// (fingerprint mismatch, corrupted frame) aborts instead: retrying a
// configuration error would loop forever.
#pragma once

#include <string>
#include <vector>

#include "portfolio/portfolio.hpp"

namespace soctest::dist {

struct DistOptions {
  /// Worker processes to spawn (ignored when `attach` is non-empty);
  /// clamped to the ladder size.
  int workers = 2;
  /// Unix-socket paths of running daemons to borrow as workers via the
  /// {"op": "worker"} stream takeover, one worker per path.
  std::vector<std::string> attach;
  /// Worker binary for spawned workers; empty = /proc/self/exe.
  std::string worker_cmd;
  /// --jobs forwarded to each spawned worker (its pool lanes); 0 = the
  /// worker's default. Any value is byte-identical, like everywhere else.
  int worker_jobs = 0;
  /// The explore universe the optimizer was built with — workers must
  /// rebuild the identical tables.
  bool select = false;
  int explore_max_width = 64;
  int explore_max_chains = 255;
  /// Per-read timeout while waiting on a worker frame; 0 = wait for EOF
  /// only (a killed worker's CLOEXEC socket always EOFs).
  double sweep_timeout_s = 0.0;
  /// Total respawn budget across the run; exceeding it aborts.
  int max_respawns = 3;
  /// Test hook: SIGKILL spawned worker `kill_worker` just before sweep
  /// `kill_at_sweep` is broadcast (-1 = disabled). Exercises the respawn
  /// path deterministically.
  int kill_worker = -1;
  int kill_at_sweep = -1;
};

/// optimize_portfolio(), distributed. Same result, same side effects
/// (checkpoints, progress callbacks, runtime counters); PortfolioStats
/// additionally reports dist_workers / dist_respawns / dist_*_seconds.
PortfolioResult optimize_portfolio_distributed(const SocOptimizer& optimizer,
                                               const OptimizerOptions& opts,
                                               const PortfolioOptions& popts,
                                               const DistOptions& dopts);

/// resume_portfolio(), distributed. The checkpoint may come from a
/// single-process run or any (workers x jobs) split — the blobs are
/// byte-identical.
PortfolioResult resume_portfolio_distributed(const SocOptimizer& optimizer,
                                             const OptimizerOptions& opts,
                                             const PortfolioOptions& popts,
                                             const DistOptions& dopts,
                                             const std::string& checkpoint_path);

}  // namespace soctest::dist
