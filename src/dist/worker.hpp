// Distributed-portfolio worker: one process hosting a contiguous range of
// ladder slots, driven in lockstep by the coordinator over an NDJSON byte
// stream (dist/codec.hpp). Two entry points share one loop:
//
//   - `soctest --worker <socket>` (run_worker): a worker the coordinator
//     spawned, connecting back to the coordinator's own listen socket.
//   - the daemon's {"op": "worker"} stream takeover (run_worker_loop,
//     called from server/socket.cpp): an attached daemon lends the
//     connection to the dist protocol, with any already-buffered bytes
//     carried across.
//
// The worker rebuilds the coordinator's problem universe from the init
// message (SOC text + explore band + options), verifies the configuration
// fingerprint before touching any state, and then answers sweep/barrier
// commands with fingerprint-guarded shard frames. Any failure — protocol,
// fingerprint, evaluation — emits a terminal error event and returns; the
// coordinator treats it like a crash and respawns.
#pragma once

#include <string>

namespace soctest::dist {

/// Connects to the coordinator's unix socket and serves one session.
/// Returns a process exit code (0 = clean finish or coordinator hangup,
/// 1 = connect failure).
int run_worker(const std::string& socket_path);

/// Serves the worker protocol over an already-connected fd (not owned;
/// the caller closes it). `carry` holds bytes already read past the
/// takeover point. Never throws — failures become error events.
void run_worker_loop(int fd, std::string carry = {});

}  // namespace soctest::dist
